"""File discovery, two-pass rule dispatch, suppression filtering.

Pass 1 parses each file once into a
:class:`~repro.checks.context.ModuleContext`, runs every selected
per-file rule, and boils the AST down to a picklable
:class:`~repro.checks.concurrency.ModuleSummary`. Pass 1 is
embarrassingly parallel: ``jobs > 1`` fans files out over a
``ProcessPoolExecutor``. Pass 2 merges the summaries into a
:class:`~repro.checks.concurrency.ProjectIndex` and runs the
project-wide rules (SIM005/SIM006) over it.

``index_paths`` name files that join the project index — feeding
method resolution, thread seeds, and SIM006's twin-test evidence —
without being checked themselves: findings never anchor on them.
The CLI indexes ``tests/`` automatically for this reason.

Files that fail to parse are reported as errors, never swallowed —
the CI smoke that "the checker parses everything under ``src/``" is
just a run whose error list must stay empty.

With ``strict_suppressions``, every ``# repro-check: disable=RULE``
directive that suppressed nothing (for a rule that actually ran) is
itself reported as a SUP001 finding, so suppressions can't outlive
the code they excused.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.checks.concurrency import (ModuleSummary, ProjectIndex,
                                      build_summary)
from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import PROJECT_RULES, RULES

#: Engine-generated rule id for stale suppression directives
#: (``--strict-suppressions``); not in any registry, never selectable.
STALE_SUPPRESSION_RULE = "SUP001"


@dataclass(frozen=True)
class ParseError:
    """One file the checker could not parse."""

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: PARSE {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "message": self.message}


@dataclass
class CheckReport:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[ParseError] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    #: index-only files parsed for the project index (not checked).
    indexed: int = 0

    def extend(self, other: "CheckReport") -> None:
        self.findings.extend(other.findings)
        self.errors.extend(other.errors)
        self.files += other.files
        self.suppressed += other.suppressed
        self.indexed += other.indexed


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files,
    skipping hidden directories and ``__pycache__``."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path).parts
                if any(part == "__pycache__" or part.startswith(".")
                       for part in relative):
                    continue
                out.append(candidate)
        else:
            out.append(path)
    return out


def display_path(path: str | Path) -> str:
    """Stable, cwd-relative POSIX path for reports and fingerprints."""
    path = Path(path)
    try:
        path = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return path.as_posix()


def _selected_rules(rules: Sequence[str] | None):
    """(per-file rules, project rules) for a ``--select`` list."""
    if rules is None:
        return list(RULES.values()), list(PROJECT_RULES.values())
    known = set(RULES) | set(PROJECT_RULES)
    unknown = [r for r in rules if r not in known]
    if unknown:
        raise KeyError(f"unknown rule(s) {unknown}; "
                       f"known: {sorted(known)}")
    return ([RULES[r] for r in rules if r in RULES],
            [PROJECT_RULES[r] for r in rules if r in PROJECT_RULES])


def _match_suppression(suppressions, file_suppressions,
                       finding: Finding):
    """The (line, token) that suppresses ``finding``, or None.

    Line 0 stands for a file-level ``disable-file=`` directive."""
    line_rules = suppressions.get(finding.line, ())
    rule = finding.rule.upper()
    if rule in line_rules:
        return (finding.line, rule)
    if "ALL" in line_rules:
        return (finding.line, "ALL")
    if rule in file_suppressions:
        return (0, rule)
    if "ALL" in file_suppressions:
        return (0, "ALL")
    return None


@dataclass
class FileOutcome:
    """Everything pass 1 learned about one file (picklable)."""

    report: CheckReport
    summary: ModuleSummary | None = None
    #: (line, token) suppression directives that matched a finding.
    used: list = field(default_factory=list)


def _analyze_source(source: str, path: str,
                    rule_names: tuple | None,
                    index_only: bool = False) -> FileOutcome:
    """Pass 1 for one in-memory blob: per-file rules + summary."""
    report = CheckReport(files=0 if index_only else 1,
                         indexed=1 if index_only else 0)
    try:
        ctx = ModuleContext.parse(source, path)
    except SyntaxError as exc:
        report.errors.append(ParseError(
            path=path, message=f"{exc.msg} (line {exc.lineno})"))
        return FileOutcome(report=report)
    file_rules, _ = _selected_rules(rule_names)
    used: list = []
    if not index_only:
        for rule in file_rules:
            for finding in rule.check(ctx):
                hit = _match_suppression(ctx.suppressions,
                                         ctx.file_suppressions, finding)
                if hit is not None:
                    report.suppressed += 1
                    used.append(hit)
                else:
                    report.findings.append(finding)
    report.findings.sort()
    summary = build_summary(ctx.tree, path,
                            suppressions=ctx.suppressions,
                            file_suppressions=ctx.file_suppressions,
                            index_only=index_only)
    return FileOutcome(report=report, summary=summary, used=used)


def _analyze_path(args: tuple) -> FileOutcome:
    """Process-pool entry point: args = (shown, fs_path, rule_names,
    index_only)."""
    shown, fs_path, rule_names, index_only = args
    try:
        source = Path(fs_path).read_text(encoding="utf-8")
    except OSError as exc:
        report = CheckReport(files=0 if index_only else 1,
                             indexed=1 if index_only else 0)
        report.errors.append(ParseError(path=shown, message=str(exc)))
        return FileOutcome(report=report)
    return _analyze_source(source, shown, rule_names,
                           index_only=index_only)


def _run_project_rules(report: CheckReport,
                       outcomes: list[FileOutcome],
                       project_rules,
                       used_by_path: dict) -> None:
    """Pass 2: project rules over the merged index, suppression-aware."""
    summaries = [o.summary for o in outcomes if o.summary is not None]
    if not summaries or not project_rules:
        return
    project = ProjectIndex(summaries)
    for rule in project_rules:
        for finding in rule.check_project(project):
            suppressions, file_suppressions = project.directives_for(
                finding.path)
            hit = _match_suppression(suppressions, file_suppressions,
                                     finding)
            if hit is not None:
                report.suppressed += 1
                used_by_path.setdefault(finding.path, set()).add(hit)
            else:
                report.findings.append(finding)


def _stale_suppression_findings(outcomes: list[FileOutcome],
                                used_by_path: dict,
                                active_rules: set) -> list[Finding]:
    """SUP001 findings for directives that suppressed nothing.

    Only rule tokens that actually ran count — ``--select SIM005``
    must not declare every SIM001 suppression stale. ``ALL`` tokens
    are stale when no finding at all was suppressed there."""
    findings: list[Finding] = []
    for outcome in outcomes:
        summary = outcome.summary
        if summary is None or summary.index_only:
            continue
        used = used_by_path.get(summary.path, set())
        for line, tokens in sorted(summary.suppressions.items()):
            for token in tokens:
                if token != "ALL" and token not in active_rules:
                    continue
                if (line, token) in used:
                    continue
                if token == "ALL" and any(l == line for l, _ in used):
                    continue
                findings.append(Finding(
                    path=summary.path, line=line, col=0,
                    rule=STALE_SUPPRESSION_RULE,
                    key=f"stale:{token}@{line}",
                    message=f"suppression disable={token} on line "
                            f"{line} matched no finding — remove it "
                            "or fix the annotation"))
        for token in summary.file_suppressions:
            if token != "ALL" and token not in active_rules:
                continue
            if (0, token) in used:
                continue
            if token == "ALL" and any(l == 0 for l, _ in used):
                continue
            findings.append(Finding(
                path=summary.path, line=1, col=0,
                rule=STALE_SUPPRESSION_RULE,
                key=f"stale:disable-file={token}",
                message=f"file-level suppression disable-file={token} "
                        "matched no finding — remove it or fix the "
                        "annotation"))
    return findings


def _finalize(report: CheckReport, outcomes: list[FileOutcome],
              project_rules, active_rules: set,
              strict_suppressions: bool) -> CheckReport:
    used_by_path: dict = {}
    for outcome in outcomes:
        if outcome.summary is not None and outcome.used:
            used_by_path.setdefault(
                outcome.summary.path, set()).update(outcome.used)
    _run_project_rules(report, outcomes, project_rules, used_by_path)
    if strict_suppressions:
        report.findings.extend(_stale_suppression_findings(
            outcomes, used_by_path, active_rules))
    report.findings.sort()
    return report


def check_source(source: str, path: str,
                 rules: Sequence[str] | None = None,
                 index_sources: dict | None = None,
                 strict_suppressions: bool = False) -> CheckReport:
    """Run rules over one in-memory source blob (plus optional
    index-only companions, for twin-test evidence in tests)."""
    rule_names = tuple(rules) if rules is not None else None
    _, project_rules = _selected_rules(rule_names)
    outcome = _analyze_source(source, path, rule_names)
    report = outcome.report
    outcomes = [outcome]
    for extra_path, extra_source in sorted(
            (index_sources or {}).items()):
        extra = _analyze_source(extra_source, extra_path, rule_names,
                                index_only=True)
        report.extend(extra.report)
        outcomes.append(extra)
    active = {r.rule_id for r in _selected_rules(rule_names)[0]}
    active |= {r.rule_id for r in project_rules}
    return _finalize(report, outcomes, project_rules, active,
                     strict_suppressions)


def check_file(path: str | Path,
               rules: Sequence[str] | None = None) -> CheckReport:
    path = Path(path)
    shown = display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        report = CheckReport(files=1)
        report.errors.append(ParseError(path=shown, message=str(exc)))
        return report
    return check_source(source, shown, rules=rules)


def run_checks(paths: Iterable[str | Path],
               rules: Sequence[str] | None = None,
               jobs: int = 1,
               index_paths: Iterable[str | Path] = (),
               strict_suppressions: bool = False) -> CheckReport:
    """Check every python file under ``paths``.

    ``index_paths`` files join the cross-module index without being
    checked; ``jobs > 1`` parallelizes pass 1 across processes."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    rule_names = tuple(rules) if rules is not None else None
    file_rules, project_rules = _selected_rules(rule_names)
    checked = iter_python_files(paths)
    checked_set = {p.resolve() for p in checked}
    index_only = [p for p in iter_python_files(index_paths)
                  if p.resolve() not in checked_set]
    tasks = ([(display_path(p), str(p), rule_names, False)
              for p in checked]
             + [(display_path(p), str(p), rule_names, True)
                for p in index_only])
    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_analyze_path, tasks,
                                     chunksize=8))
    else:
        outcomes = [_analyze_path(task) for task in tasks]
    report = CheckReport()
    for outcome in outcomes:
        report.extend(outcome.report)
    active = {r.rule_id for r in file_rules}
    active |= {r.rule_id for r in project_rules}
    return _finalize(report, outcomes, project_rules, active,
                     strict_suppressions)
