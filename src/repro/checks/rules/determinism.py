"""SIM002 — determinism: no unseeded or wall-clock entropy sources.

Simulation code must draw all randomness from explicitly seeded
generators (``np.random.default_rng(seed)``, ``as_generator``,
``derive_epoch_seed``) so that every epoch is reproducible bit for
bit. This rule flags the escape hatches:

* ``np.random.<fn>(...)`` draws from the global legacy state
  (``rand``, ``randint``, ``shuffle``, ``seed``, …);
* ``np.random.default_rng()`` / ``default_rng(None)`` — OS entropy;
* the stdlib ``random`` module (global Mersenne Twister);
* ``time.time()`` / ``time.time_ns()`` and ``datetime.now()`` /
  ``utcnow()`` / ``date.today()`` — wall-clock values that change
  between runs. ``time.perf_counter()`` is fine: it only ever feeds
  duration telemetry, never simulation state.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.classinfo import dotted_name
from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import Rule, register

RULE_ID = "SIM002"

#: np.random members that are fine: explicit-state constructors.
_RNG_CONSTRUCTORS = frozenset({
    "Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
    "Philox", "MT19937", "SFC64",
})

_WALLCLOCK_TIME = frozenset({"time", "time_ns"})
_WALLCLOCK_DATETIME = {"now": "datetime", "utcnow": "datetime",
                       "today": "date"}


def _module_imports(tree: ast.Module) -> tuple[set[str], set[str],
                                               dict[str, str]]:
    """(numpy aliases, plain module imports, names imported from
    random/numpy.random/datetime mapped to their source module)."""
    numpy_aliases: set[str] = set()
    modules: set[str] = set()
    from_names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                local = alias.asname or top
                if top == "numpy":
                    numpy_aliases.add(local)
                modules.add(local if alias.asname else top)
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module in ("random", "numpy.random", "datetime"):
                for alias in node.names:
                    from_names[alias.asname or alias.name] = node.module
    return numpy_aliases, modules, from_names


def _is_bare_rng(call: ast.Call) -> bool:
    """default_rng with no seed (or an explicit None seed)."""
    if call.keywords:
        return any(kw.arg in (None, "seed")
                   and isinstance(kw.value, ast.Constant)
                   and kw.value.value is None for kw in call.keywords)
    if not call.args:
        return True
    return (len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is None)


@register
class Determinism(Rule):
    rule_id = RULE_ID
    summary = ("randomness must flow through seeded generators; no "
               "global RNG state or wall-clock reads")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        numpy_aliases, modules, from_names = _module_imports(ctx.tree)
        counts: dict[str, int] = {}

        def finding(node: ast.Call, label: str,
                    message: str) -> Finding:
            n = counts.get(label, 0)
            counts[label] = n + 1
            return ctx.finding(RULE_ID, node, key=f"{label}#{n}",
                               message=message)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            label = ".".join(dotted)
            # -- numpy global/unseeded RNG -------------------------------------
            if (len(dotted) == 3 and dotted[0] in numpy_aliases
                    and dotted[1] == "random"):
                fn = dotted[2]
                if fn == "default_rng":
                    if _is_bare_rng(node):
                        yield finding(
                            node, label,
                            f"{label}() without a seed draws OS "
                            f"entropy; pass an explicit seed "
                            f"(derive_epoch_seed / as_generator)")
                elif fn not in _RNG_CONSTRUCTORS:
                    yield finding(
                        node, label,
                        f"{label}() uses numpy's global RNG state; "
                        f"use a seeded np.random.default_rng(seed)")
            elif (len(dotted) == 1
                    and from_names.get(dotted[0]) == "numpy.random"
                    and dotted[0] == "default_rng" and _is_bare_rng(node)):
                yield finding(
                    node, label,
                    "default_rng() without a seed draws OS entropy; "
                    "pass an explicit seed")
            # -- stdlib random -------------------------------------------------
            elif (len(dotted) == 2 and dotted[0] == "random"
                    and "random" in modules):
                yield finding(
                    node, label,
                    f"stdlib {label}() uses the global Mersenne "
                    f"Twister; use a seeded numpy Generator")
            elif (len(dotted) == 1
                    and from_names.get(dotted[0]) == "random"):
                yield finding(
                    node, label,
                    f"stdlib random.{dotted[0]}() uses the global "
                    f"Mersenne Twister; use a seeded numpy Generator")
            # -- wall clock ----------------------------------------------------
            elif (len(dotted) == 2 and dotted[0] == "time"
                    and dotted[1] in _WALLCLOCK_TIME
                    and "time" in modules):
                yield finding(
                    node, label,
                    f"{label}() reads the wall clock; simulation "
                    f"state must not depend on it (perf_counter is "
                    f"fine for duration telemetry)")
            elif (len(dotted) >= 2
                    and dotted[-1] in _WALLCLOCK_DATETIME
                    and dotted[-2] == _WALLCLOCK_DATETIME[dotted[-1]]
                    and (dotted[0] in from_names or dotted[0] in modules)):
                yield finding(
                    node, label,
                    f"{label}() reads the wall clock; runs would "
                    f"stop being reproducible")
