"""SIM003 — protocol conformance for backends and sweep executors.

* Classes adapted as fabric backends (anything defining
  ``apply_event``, the distinguishing method of ``FabricBackend``)
  must implement the full protocol surface — ``name`` plus ``step``,
  ``apply_event``, ``snapshot``, ``restore`` — with signatures a
  protocol caller can invoke positionally.
* Classes named ``*Executor`` must implement the ``SweepExecutor``
  surface (``run(self, tasks)``).
* ``snapshot``/``restore`` must appear as a pair in any class, never
  alone — a snapshot nobody can restore (or vice versa) is a latent
  resume bug.

Protocol definitions themselves (``Protocol`` bases or
``@runtime_checkable``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.classinfo import (
    INIT_METHODS,
    ClassInfo,
    collect_classes,
    positional_arity,
)
from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import Rule, register

RULE_ID = "SIM003"

#: FabricBackend surface: method -> expected positional parameter
#: count, counting ``self``.
FABRIC_SURFACE = {"step": 2, "apply_event": 2, "snapshot": 1,
                  "restore": 2}

#: SweepExecutor surface.
EXECUTOR_SURFACE = {"run": 2}


def _signature_ok(func: ast.FunctionDef, expected: int) -> bool:
    required, total, has_star = positional_arity(func)
    if has_star:
        return required <= expected
    return required <= expected <= total


def _check_surface(ctx: ModuleContext, info: ClassInfo, protocol: str,
                   surface: dict[str, int]) -> Iterable[Finding]:
    for method, expected in surface.items():
        func = info.methods.get(method)
        if func is None:
            yield ctx.finding(
                RULE_ID, info.node, key=f"{info.name}.{method}:missing",
                message=(f"{info.name} looks like a {protocol} but "
                         f"does not define {method}()"))
        elif not _signature_ok(func, expected):
            required, total, _ = positional_arity(func)
            yield ctx.finding(
                RULE_ID, func, key=f"{info.name}.{method}:signature",
                message=(f"{info.name}.{method}() takes "
                         f"{required}-{total} positional parameters "
                         f"but the {protocol} protocol calls it with "
                         f"{expected} (counting self)"))


@register
class ProtocolConformance(Rule):
    rule_id = RULE_ID
    summary = ("backend/executor classes must implement their full "
               "protocol surface; snapshot/restore come in pairs")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for info in collect_classes(ctx.tree):
            if info.is_protocol:
                continue
            has_snap = "snapshot" in info.methods
            has_restore = "restore" in info.methods
            if has_snap != has_restore:
                present, absent = (("snapshot", "restore") if has_snap
                                   else ("restore", "snapshot"))
                yield ctx.finding(
                    RULE_ID, info.methods[present],
                    key=f"{info.name}.pair",
                    message=(f"{info.name} defines {present}() without "
                             f"{absent}() — snapshot/restore must come "
                             f"as a pair"))
            if "apply_event" in info.methods:
                yield from _check_surface(ctx, info, "FabricBackend",
                                          FABRIC_SURFACE)
                if not self._has_name(info):
                    yield ctx.finding(
                        RULE_ID, info.node, key=f"{info.name}.name",
                        message=(f"{info.name} looks like a "
                                 f"FabricBackend but never defines a "
                                 f"`name` attribute"))
            if (info.name.endswith("Executor")
                    and info.name != "SweepExecutor"):
                yield from _check_surface(ctx, info, "SweepExecutor",
                                          EXECUTOR_SURFACE)

    @staticmethod
    def _has_name(info: ClassInfo) -> bool:
        if "name" in info.class_attrs:
            return True
        return any(w.attr == "name" and w.direct
                   for w in info.writes_in(*INIT_METHODS))
