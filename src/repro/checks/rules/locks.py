"""SIM005 — lock discipline over the project-wide concurrency index.

For every class that owns a lock attribute (``threading.Lock`` /
``RLock`` / ``Condition`` or the :mod:`repro.checks.runtime`
factories), the rule:

* infers the **guarded-by set** of each lock — every attribute
  written (or mutated in place) under ``with self.<lock>:`` anywhere
  outside construction is guarded by that lock;
* flags any **unguarded write** to a guarded attribute, wherever it
  happens — including cross-object writes (``session.attr = ...``)
  when ``attr`` uniquely belongs to one lock-owning class;
* flags **unguarded reads** of guarded attributes, but only in
  methods reachable from a thread entry point (``Thread(target=...)``
  seeds, followed through unambiguous call edges) — single-threaded
  reads are not races;
* treats private methods whose *every* in-class call site holds a
  lock as holding it too (**caller-held inference**, to fixpoint), so
  ``_claim_id``-style helpers need no annotation;
* flags ``Condition.wait()`` not wrapped in a loop re-checking its
  predicate (lost/spurious wakeups; ``wait_for`` is exempt) and
  ``notify``/``notify_all`` without the owning lock held;
* builds the inter-class **lock acquisition graph** (lock identities
  are ``Class.attr``; edges follow held-sets and unambiguous call
  chains) and reports any cycle as a deadlock-order finding.

All reasoning is name-based and deliberately conservative: ambiguous
method names (``to_dict``, ``restore``) resolve to nothing and stop
the analysis rather than guessing.
"""

from __future__ import annotations

from typing import Iterable

from repro.checks.classinfo import INIT_METHODS
from repro.checks.concurrency import (ClassSummary, ModuleSummary,
                                      ProjectIndex)
from repro.checks.findings import Finding
from repro.checks.rules import ProjectRule, register_project


def _effective_held(cls: ClassSummary) -> dict[str, frozenset]:
    """Per-method extra ``self.<lock>`` expressions via caller-held
    inference: a private, non-thread-target method called only with a
    lock held effectively holds it. Iterated to fixpoint so chains of
    private helpers propagate."""
    eff = {name: frozenset() for name in cls.methods}
    candidates = [name for name in cls.methods
                  if name.startswith("_") and not name.startswith("__")
                  and name not in cls.thread_targets]
    self_locks = {f"self.{attr}" for attr in cls.locks}
    changed = True
    while changed:
        changed = False
        for name in candidates:
            sites = [(caller, call)
                     for caller in cls.methods.values()
                     for call in caller.calls
                     if call.owner == "self" and call.name == name]
            if not sites:
                continue
            held_sets = [frozenset(call.held) | eff[caller.name]
                         for caller, call in sites]
            new = frozenset.intersection(*held_sets) & self_locks
            if new != eff[name]:
                eff[name] = new
                changed = True
    return eff


def _holds(access_held, eff_extra, lock_expr: str) -> bool:
    return lock_expr in access_held or lock_expr in eff_extra


def _guarded_sets(cls: ClassSummary,
                  eff: dict[str, frozenset]) -> dict[str, set]:
    """lock attr -> attributes written under it (outside construction)."""
    guarded: dict[str, set] = {attr: set() for attr in cls.locks}
    for method in cls.methods.values():
        if method.name in INIT_METHODS:
            continue
        for access in method.accesses:
            if access.owner != "self" or access.kind != "write":
                continue
            if access.attr in cls.locks:
                continue
            for lock in cls.locks:
                if _holds(access.held, eff[method.name],
                          f"self.{lock}"):
                    guarded[lock].add(access.attr)
    return guarded


class _Analysis:
    """Per-class derived facts, shared by the sub-checks."""

    def __init__(self, mod: ModuleSummary, cls: ClassSummary) -> None:
        self.mod = mod
        self.cls = cls
        self.eff = _effective_held(cls)
        self.guarded = _guarded_sets(cls, self.eff)
        #: attr -> lock attrs guarding it.
        self.guards_of: dict[str, set] = {}
        for lock, attrs in self.guarded.items():
            for attr in attrs:
                self.guards_of.setdefault(attr, set()).add(lock)


@register_project
class LockDiscipline(ProjectRule):
    rule_id = "SIM005"
    summary = ("lock discipline: guarded-attribute access, "
               "wait/notify usage, deadlock-free lock order")

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        analyses: dict[str, _Analysis] = {}
        for mod in project.modules:
            if mod.is_test:
                continue
            for cls in mod.classes:
                if cls.locks:
                    # First definition wins on duplicate class names —
                    # mirrors resolve_method's uniqueness discipline.
                    analyses.setdefault(cls.name, _Analysis(mod, cls))
        if not analyses:
            return []
        #: guarded attr -> owning class names (cross-object checks
        #: only fire when the attr belongs to exactly one class and no
        #: other class even writes an attr of that name).
        attr_owners: dict[str, set] = {}
        for analysis in analyses.values():
            for attr in analysis.guards_of:
                attr_owners.setdefault(attr, set()).add(
                    analysis.cls.name)
        other_writers = self._self_write_surface(project, analyses)
        reachable = self._reachable_methods(project)
        findings: dict[str, Finding] = {}

        def emit(finding: Finding) -> None:
            findings.setdefault(finding.fingerprint, finding)

        for analysis in analyses.values():
            if not analysis.mod.index_only:
                self._check_class(analysis, reachable, emit)
        self._check_cross_object(project, analyses, attr_owners,
                                 other_writers, reachable, emit)
        self._check_lock_order(project, analyses, emit)
        return sorted(findings.values())

    # -- guarded-attribute discipline (same-class) -----------------------------

    def _check_class(self, analysis: _Analysis, reachable, emit) -> None:
        mod, cls = analysis.mod, analysis.cls
        seen: set[tuple] = set()
        for method in cls.methods.values():
            if method.name in INIT_METHODS:
                continue
            in_thread = (cls.name, method.name) in reachable
            for access in method.accesses:
                if access.owner != "self":
                    continue
                locks = analysis.guards_of.get(access.attr)
                if not locks:
                    continue
                if any(_holds(access.held, analysis.eff[method.name],
                              f"self.{lock}") for lock in locks):
                    continue
                if access.kind == "read" and not in_thread:
                    continue
                dedup = (method.name, access.attr, access.kind)
                if dedup in seen:
                    continue
                seen.add(dedup)
                lock_names = " or ".join(
                    f"self.{lock}" for lock in sorted(locks))
                why = ("written" if access.kind == "write" else
                       "read (reachable from a thread entry point)")
                emit(Finding(
                    path=mod.path, line=access.line, col=access.col,
                    rule=self.rule_id,
                    key=f"{cls.name}.{method.name}.{access.attr}"
                        f":{access.kind}",
                    message=f"guarded attribute self.{access.attr} "
                            f"{why} without holding {lock_names} "
                            f"in {cls.name}.{method.name}()"))
            self._check_wait_notify(analysis, method, emit)

    def _check_wait_notify(self, analysis: _Analysis, method, emit) -> None:
        mod, cls = analysis.mod, analysis.cls
        conditions = {f"self.{attr}" for attr, kind in cls.locks.items()
                      if kind == "condition"}
        for wait in method.waits:
            if wait.is_wait_for or wait.expr not in conditions:
                continue
            if not wait.in_loop:
                emit(Finding(
                    path=mod.path, line=wait.line, col=wait.col,
                    rule=self.rule_id,
                    key=f"{cls.name}.{method.name}:wait:{wait.expr}",
                    message=f"{wait.expr}.wait() outside a predicate "
                            f"loop in {cls.name}.{method.name}() — "
                            "spurious wakeups make bare wait() "
                            "incorrect; re-check the condition in a "
                            "while loop or use wait_for()"))
        for notify in method.notifies:
            if notify.expr not in conditions:
                continue
            if not _holds(notify.held, analysis.eff[method.name],
                          notify.expr):
                emit(Finding(
                    path=mod.path, line=notify.line, col=notify.col,
                    rule=self.rule_id,
                    key=f"{cls.name}.{method.name}:notify:{notify.expr}",
                    message=f"{notify.expr}.notify called without "
                            f"holding {notify.expr} in "
                            f"{cls.name}.{method.name}()"))

    # -- cross-object discipline -----------------------------------------------

    def _self_write_surface(self, project, analyses) -> dict[str, set]:
        """attr -> every class that self-writes or declares it
        (guarded or not); used to refuse cross-object checks on
        ambiguous attr names — two classes sharing a field name means
        ``other.attr`` can't be attributed to either."""
        writers: dict[str, set] = {}
        for mod in project.modules:
            if mod.is_test:
                continue
            for cls in mod.classes:
                for attr in cls.declared:
                    writers.setdefault(attr, set()).add(cls.name)
                for method in cls.methods.values():
                    for access in method.accesses:
                        if (access.owner == "self"
                                and access.kind == "write"):
                            writers.setdefault(access.attr, set()).add(
                                cls.name)
        return writers

    def _check_cross_object(self, project, analyses, attr_owners,
                            other_writers, reachable, emit) -> None:
        for mod in project.modules:
            if mod.is_test or mod.index_only:
                continue
            for cls in mod.classes:
                for method in cls.methods.values():
                    in_thread = (cls.name, method.name) in reachable
                    seen: set[tuple] = set()
                    for access in method.accesses:
                        if access.owner == "self":
                            continue
                        owners = attr_owners.get(access.attr, set())
                        # Unique ownership only: exactly one class
                        # guards the attr AND no other class writes
                        # an attr of the same name.
                        if (len(owners) != 1 or len(
                                other_writers.get(access.attr, set())
                                - owners) > 0):
                            continue
                        owner_cls = next(iter(owners))
                        if owner_cls == cls.name:
                            continue
                        if access.kind == "read" and not in_thread:
                            continue
                        analysis = analyses[owner_cls]
                        locks = analysis.guards_of[access.attr]
                        if any(f"{access.owner}.{lock}" in access.held
                               for lock in locks):
                            continue
                        dedup = (method.name, access.owner,
                                 access.attr, access.kind)
                        if dedup in seen:
                            continue
                        seen.add(dedup)
                        lock_names = " or ".join(
                            f"{access.owner}.{lock}"
                            for lock in sorted(locks))
                        emit(Finding(
                            path=mod.path, line=access.line,
                            col=access.col, rule=self.rule_id,
                            key=f"{cls.name}.{method.name}."
                                f"{access.owner}.{access.attr}"
                                f":x{access.kind}",
                            message=f"{access.owner}.{access.attr} "
                                    f"({owner_cls}'s guarded "
                                    f"attribute) {access.kind} without "
                                    f"holding {lock_names} in "
                                    f"{cls.name}.{method.name}()"))

    # -- thread-entry reachability ---------------------------------------------

    def _reachable_methods(self, project: ProjectIndex) -> set:
        """(class, method) pairs reachable from any Thread target,
        following self-calls and uniquely-resolvable cross-class calls."""
        seeds: list[tuple] = []
        for mod in project.modules:
            for cls in mod.classes:
                for target in cls.thread_targets:
                    if target in cls.methods:
                        seeds.append((cls.name, target))
            for target in mod.thread_target_names:
                resolved = project.resolve_method(target)
                if resolved is not None:
                    seeds.append((resolved[1].name, target))
        reachable: set = set()
        stack = list(seeds)
        by_name = {name: pairs[0][1]
                   for name, pairs in project.classes.items()
                   if len(pairs) == 1}
        while stack:
            cls_name, method_name = stack.pop()
            if (cls_name, method_name) in reachable:
                continue
            reachable.add((cls_name, method_name))
            cls = by_name.get(cls_name)
            if cls is None or method_name not in cls.methods:
                continue
            for call in cls.methods[method_name].calls:
                if call.owner == "self" and call.name in cls.methods:
                    stack.append((cls_name, call.name))
                elif call.owner != "self":
                    resolved = project.resolve_method(call.name)
                    if resolved is not None:
                        stack.append((resolved[1].name, call.name))
        return reachable

    # -- lock-order graph ------------------------------------------------------

    def _lock_identity(self, expr: str, cls: ClassSummary,
                       analyses) -> str | None:
        """"self._lock" in SessionPool -> "SessionPool._lock";
        "session.updated" -> "Session.updated" when ``updated`` is the
        lock attr of exactly one lock-owning class."""
        root, _, attr = expr.partition(".")
        if not attr or "." in attr:
            return None
        if root == "self":
            return f"{cls.name}.{attr}" if attr in cls.locks else None
        owners = [a.cls.name for a in analyses.values()
                  if attr in a.cls.locks]
        return f"{owners[0]}.{attr}" if len(owners) == 1 else None

    def _check_lock_order(self, project, analyses, emit) -> None:
        # Per-method direct acquisitions, then a call-closure fixpoint
        # so "holding A, call method that takes B" contributes A -> B.
        direct: dict[tuple, set] = {}
        sites: dict[tuple, tuple] = {}  # edge -> (path, line, col)
        method_cls: dict[tuple, ClassSummary] = {}
        for mod in project.modules:
            if mod.is_test or mod.index_only:
                continue
            for cls in mod.classes:
                for method in cls.methods.values():
                    key = (cls.name, method.name)
                    method_cls[key] = cls
                    acquired = set()
                    for acq in method.acquires:
                        ident = self._lock_identity(acq.expr, cls,
                                                    analyses)
                        if ident is not None:
                            acquired.add(ident)
                    direct.setdefault(key, set()).update(acquired)
        closure = {key: set(value) for key, value in direct.items()}
        changed = True
        while changed:
            changed = False
            for key, cls in method_cls.items():
                for call in cls.methods[key[1]].calls:
                    callee = None
                    if call.owner == "self" and call.name in cls.methods:
                        callee = (key[0], call.name)
                    elif call.owner != "self":
                        resolved = project.resolve_method(call.name)
                        if resolved is not None:
                            callee = (resolved[1].name, call.name)
                    if callee is None or callee not in closure:
                        continue
                    before = len(closure[key])
                    closure[key] |= closure[callee]
                    if len(closure[key]) > before:
                        changed = True
        edges: dict[tuple, tuple] = {}
        for mod in project.modules:
            if mod.is_test or mod.index_only:
                continue
            for cls in mod.classes:
                for method in cls.methods.values():
                    eff = (analyses[cls.name].eff[method.name]
                           if cls.name in analyses
                           and analyses[cls.name].cls is cls
                           else frozenset())
                    for acq in method.acquires:
                        ident = self._lock_identity(
                            acq.expr, cls, analyses)
                        if ident is None:
                            continue
                        held_ids = self._held_identities(
                            acq.held, eff, cls, analyses)
                        for held in held_ids:
                            if held != ident:
                                edges.setdefault(
                                    (held, ident),
                                    (mod.path, acq.line, acq.col))
                    for call in method.calls:
                        callee = None
                        if (call.owner == "self"
                                and call.name in cls.methods):
                            callee = (cls.name, call.name)
                        elif call.owner != "self":
                            resolved = project.resolve_method(call.name)
                            if resolved is not None:
                                callee = (resolved[1].name, call.name)
                        if callee is None:
                            continue
                        held_ids = self._held_identities(
                            call.held, eff, cls, analyses)
                        for held in held_ids:
                            for inner in closure.get(callee, ()):
                                if inner != held:
                                    edges.setdefault(
                                        (held, inner),
                                        (mod.path, call.line, call.col))
        cycle = _find_cycle(edges)
        if cycle:
            path, line, col = edges[(cycle[0], cycle[1])]
            loop = " -> ".join(cycle + [cycle[0]])
            emit(Finding(
                path=path, line=line, col=col, rule=self.rule_id,
                key="lock-order-cycle:" + "->".join(sorted(set(cycle))),
                message=f"lock acquisition cycle {loop} — threads "
                        "taking these locks in different orders can "
                        "deadlock; pick one global order"))

    def _held_identities(self, held, eff, cls, analyses) -> set:
        out = set()
        for expr in tuple(held) + tuple(eff):
            ident = self._lock_identity(expr, cls, analyses)
            if ident is not None:
                out.add(ident)
        return out


def _find_cycle(edges: dict) -> list | None:
    """Any one cycle in the lock graph, as an ordered node list."""
    adjacency: dict[str, list] = {}
    for (src, dst) in edges:
        adjacency.setdefault(src, []).append(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    trail: list = []

    def dfs(node: str):
        color[node] = GRAY
        trail.append(node)
        for nxt in sorted(adjacency.get(node, [])):
            state = color.get(nxt, WHITE)
            if state == GRAY:
                return trail[trail.index(nxt):]
            if state == WHITE:
                found = dfs(nxt)
                if found:
                    return found
        trail.pop()
        color[node] = BLACK
        return None

    for start in sorted(adjacency):
        if color.get(start, WHITE) == WHITE:
            found = dfs(start)
            if found:
                return found
    return None
