"""Rule registry: every rule registers itself on import.

A rule is a stateless object with a ``rule_id``, a one-line
``summary``, and ``check(ctx) -> Iterable[Finding]`` taking one
:class:`~repro.checks.context.ModuleContext`. The engine instantiates
nothing at check time — the registry holds singletons.
"""

from __future__ import annotations

from typing import Iterable

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding

#: rule_id -> rule singleton, populated by :func:`register`.
RULES: dict[str, "Rule"] = {}

#: rule_id -> project-wide rule singleton (pass 2), populated by
#: :func:`register_project`. Keyed in the same namespace as
#: :data:`RULES` — ``--select`` draws from the union.
PROJECT_RULES: dict[str, "ProjectRule"] = {}


class Rule:
    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule:
    """A cross-file rule: runs once over the merged
    :class:`~repro.checks.concurrency.ProjectIndex` instead of per
    module. Findings must anchor on non-``index_only`` modules."""

    rule_id: str = ""
    summary: str = ""

    def check_project(self, project) -> Iterable[Finding]:
        raise NotImplementedError


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance to :data:`RULES`."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} needs a rule_id")
    if cls.rule_id in RULES or cls.rule_id in PROJECT_RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls()
    return cls


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding one instance to :data:`PROJECT_RULES`."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} needs a rule_id")
    if cls.rule_id in RULES or cls.rule_id in PROJECT_RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    PROJECT_RULES[cls.rule_id] = cls()
    return cls


# Import order fixes report order for same-location findings; each
# module registers its rule as a side effect.
from repro.checks.rules import (  # noqa: E402,F401
    snapshot,
    determinism,
    protocol,
    jsonstable,
    defaults,
    locks,
    twins,
)
