"""SIM006 — vectorized/scalar twin conformance.

PR 8 split every hot path into a vectorized entry point and a scalar
oracle, bit-identical by construction. That guarantee only holds
while both sides exist and a twin test proves the identity — so this
rule makes the pairing structural:

* every class defining a vectorized entry point must keep its scalar
  oracle in the same class (or as a module-level function); and
* some test module must reference the class together with both twin
  names — the "bit-identity twin test" — so optimizing one side
  without re-proving the identity fails the gate.

The twin table mirrors the repo's actual batch seams. Backends toggle
``_step_batched``/``_step_scalar`` via a flag, and their twin test
(``make_twins``) references the flag rather than the private method
names, so flags are accepted as equivalent evidence.

The test-evidence check only fires when at least one test module was
indexed (``repro check --jobs``/CLI auto-index ``tests/``; engine
``index_paths``): a bare single-file run can prove oracle presence
but cannot see the test tree, and must not cry wolf.
"""

from __future__ import annotations

from typing import Iterable

from repro.checks.concurrency import ProjectIndex
from repro.checks.findings import Finding
from repro.checks.rules import ProjectRule, register_project

#: vectorized entry point -> its scalar oracle.
TWIN_ORACLES = {
    "batch_step": "step",
    "offer_batch": "offer",
    "route_tokens": "route_flow",
    "generate_batch": "generate",
    "_step_batched": "_step_scalar",
}

#: Accepted twin-test evidence aliases per vectorized name: the
#: backend twin test toggles twins through these constructor flags.
TWIN_ALIASES = {
    "_step_batched": ("batch_step", "batch_admission"),
}


@register_project
class TwinConformance(ProjectRule):
    rule_id = "SIM006"
    summary = ("vectorized twins: scalar oracle present and a twin "
               "test references both")

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        findings: list[Finding] = []
        have_tests = bool(project.test_modules)
        for mod in project.modules:
            if mod.is_test or mod.index_only:
                continue
            for cls in mod.classes:
                for vec, oracle in TWIN_ORACLES.items():
                    if vec not in cls.methods:
                        continue
                    method = cls.methods[vec]
                    if (oracle not in cls.methods
                            and oracle not in mod.functions):
                        findings.append(Finding(
                            path=mod.path, line=method.line,
                            col=method.col, rule=self.rule_id,
                            key=f"{cls.name}.{vec}:oracle",
                            message=f"vectorized entry point "
                                    f"{cls.name}.{vec}() has no "
                                    f"scalar oracle {oracle}() in the "
                                    "same class or module — the twin "
                                    "pair must stay together"))
                        continue
                    if have_tests and not self._has_twin_test(
                            project, cls.name, vec, oracle):
                        wanted = [vec, oracle]
                        aliases = TWIN_ALIASES.get(vec)
                        hint = (f" (or the {'/'.join(aliases)} toggle)"
                                if aliases else "")
                        findings.append(Finding(
                            path=mod.path, line=method.line,
                            col=method.col, rule=self.rule_id,
                            key=f"{cls.name}.{vec}:twin-test",
                            message=f"no twin test found for "
                                    f"{cls.name}.{vec}(): no test "
                                    f"module references {cls.name} "
                                    f"together with "
                                    f"{' and '.join(wanted)}{hint} — "
                                    "add a bit-identity test driving "
                                    "both twins"))
        return sorted(findings)

    def _has_twin_test(self, project: ProjectIndex, cls_name: str,
                       vec: str, oracle: str) -> bool:
        aliases = TWIN_ALIASES.get(vec, ())
        for test in project.test_modules:
            if cls_name not in test.names:
                continue
            if vec in test.names and oracle in test.names:
                return True
            if any(alias in test.names for alias in aliases):
                return True
        return False
