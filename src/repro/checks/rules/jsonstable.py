"""SIM004 — JSON stability of snapshot/to_dict payloads.

Snapshots ride through the result cache's JSON encoding
(``encode_metrics``/``decode_metrics``), so anything JSON cannot
represent losslessly corrupts a resumed run: sets and tuples decode
as lists (or fail), numpy arrays/scalars aren't serializable at all,
and non-string dict keys come back stringified. This rule inspects
every dict built inside a ``snapshot()`` or ``to_dict()`` method and
flags those constructs at the point of construction, where the fix
(``.tolist()``, ``int(...)``, ``str(...)``, ``sorted(...)``) is one
call away.

Array-backed batch classes (``FlowBatch`` and friends) keep their hot
state as ndarray fields annotated in the class body; serializing such
a field *bare* (``"src": self.src``) is just as unstable as calling
``np.asarray`` inline, so the rule also flags bare ``self.<attr>``
payload values whose class-level annotation mentions ``ndarray``.
``self.<attr>.tolist()`` is the JSON-stable spelling and passes.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.checks.classinfo import dotted_name, self_name
from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import Rule, register

RULE_ID = "SIM004"

_METHOD_NAMES = ("snapshot", "to_dict")

_BAD_BUILTINS = frozenset({"set", "frozenset", "tuple"})
_NUMPY_ARRAY_MAKERS = frozenset({
    "array", "asarray", "zeros", "ones", "empty", "full", "arange",
    "linspace",
})
_NUMPY_SCALARS = frozenset({
    "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
    "uint64", "float16", "float32", "float64", "bool_",
})
#: ndarray reductions that yield numpy scalars when called as methods.
_SCALAR_METHODS = frozenset({"sum", "mean", "max", "min", "prod",
                             "std", "var"})


def _mentions_ndarray(annotation: ast.expr) -> bool:
    """True if a type annotation names an ndarray anywhere — handles
    ``np.ndarray``, ``np.ndarray | None``, and ``NDArray[...]``."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in ("ndarray",
                                                      "NDArray"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("ndarray",
                                                             "NDArray"):
            return True
    return False


def _ndarray_attrs(cls: ast.ClassDef) -> frozenset[str]:
    """Attribute names the class annotates as ndarray-backed, from
    class-body (dataclass field) annotations and annotated
    ``self.<attr>`` assignments inside methods."""
    attrs: set[str] = set()
    for stmt in cls.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and _mentions_ndarray(stmt.annotation)):
            attrs.add(stmt.target.id)
    for func in cls.body:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        selfname = self_name(func)
        if selfname is None:
            continue
        for node in ast.walk(func):
            if (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == selfname
                    and _mentions_ndarray(node.annotation)):
                attrs.add(node.target.attr)
    return frozenset(attrs)


def _bare_ndarray_field(node: ast.expr, selfname: str | None,
                        ndarray_attrs: frozenset[str]) -> str | None:
    if (selfname is not None
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == selfname
            and node.attr in ndarray_attrs):
        return (f"ndarray field self.{node.attr} serialized bare is "
                f"not JSON-stable; use self.{node.attr}.tolist()")
    return None


def _value_problem(node: ast.expr) -> str | None:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set value does not survive the JSON round trip"
    if isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
        return "tuple value decodes as a list after the JSON round trip"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        if len(dotted) == 1 and dotted[0] in _BAD_BUILTINS:
            return (f"{dotted[0]}() value does not survive the JSON "
                    f"round trip")
        if len(dotted) >= 2 and dotted[-1] in _NUMPY_ARRAY_MAKERS:
            return (f"{'.'.join(dotted)}() yields an ndarray, which "
                    f"is not JSON-serializable; use .tolist()")
        if len(dotted) >= 2 and dotted[-1] in _NUMPY_SCALARS:
            return (f"{'.'.join(dotted)}() yields a numpy scalar; "
                    f"wrap it in int()/float()")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCALAR_METHODS
                and not isinstance(node.func.value, ast.Name)):
            return (f".{node.func.attr}() likely yields a numpy "
                    f"scalar; wrap it in int()/float()")
    return None


def _iter_values(node: ast.expr) -> Iterator[ast.expr]:
    """The value itself, plus elements of (nested) list displays —
    stopping at nested dicts/comprehensions, which are visited in
    their own right by the main walk."""
    yield node
    if isinstance(node, ast.List):
        for element in node.elts:
            yield from _iter_values(element)
    elif isinstance(node, ast.ListComp):
        yield from _iter_values(node.elt)


def _key_problem(node: ast.expr | None) -> str | None:
    if node is None:  # ``**expansion`` — contents unknown
        return None
    if isinstance(node, ast.Constant) and not isinstance(node.value, str):
        return (f"non-string dict key {node.value!r} comes back "
                f"stringified after the JSON round trip")
    if isinstance(node, ast.Tuple):
        return "tuple dict key is not JSON-serializable"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted and len(dotted) == 1 and dotted[0] in ("int", "float"):
            return (f"{dotted[0]}() dict key comes back stringified "
                    f"after the JSON round trip; use str(...)")
    return None


@register
class JsonStability(Rule):
    rule_id = RULE_ID
    summary = ("snapshot()/to_dict() payloads must be JSON-stable: no "
               "sets, tuples, numpy values, or non-string keys")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        counts: dict[str, int] = {}

        def finding(node: ast.expr, owner: str, what: str,
                    message: str) -> Finding:
            label = f"{owner}.{what}"
            n = counts.get(label, 0)
            counts[label] = n + 1
            return ctx.finding(RULE_ID, node, key=f"{label}#{n}",
                               message=message)

        def value_problems(part: ast.expr, selfname: str | None,
                           ndarray_attrs: frozenset[str]) -> str | None:
            return (_value_problem(part)
                    or _bare_ndarray_field(part, selfname,
                                           ndarray_attrs))

        def inspect(func: ast.FunctionDef,
                    ndarray_attrs: frozenset[str]
                    ) -> Iterator[Finding]:
            selfname = self_name(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Dict):
                    for key, value in zip(node.keys, node.values):
                        problem = _key_problem(key)
                        if problem:
                            yield finding(key, func.name, "key",
                                          f"in {func.name}(): {problem}")
                        for part in _iter_values(value):
                            problem = value_problems(part, selfname,
                                                     ndarray_attrs)
                            if problem:
                                yield finding(
                                    part, func.name, "value",
                                    f"in {func.name}(): {problem}")
                elif isinstance(node, ast.DictComp):
                    problem = _key_problem(node.key)
                    if problem:
                        yield finding(node.key, func.name, "key",
                                      f"in {func.name}(): {problem}")
                    for part in _iter_values(node.value):
                        problem = value_problems(part, selfname,
                                                 ndarray_attrs)
                        if problem:
                            yield finding(part, func.name, "value",
                                          f"in {func.name}(): {problem}")

        # Methods get their class's ndarray-annotation context; bare
        # snapshot()/to_dict() functions outside any class are still
        # checked for the construct-level problems.
        seen: set[int] = set()
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            ndarray_attrs = _ndarray_attrs(cls)
            for func in cls.body:
                if (isinstance(func, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                        and func.name in _METHOD_NAMES):
                    seen.add(id(func))
                    yield from inspect(func, ndarray_attrs)
        for func in ast.walk(ctx.tree):
            if (isinstance(func, (ast.FunctionDef,
                                  ast.AsyncFunctionDef))
                    and func.name in _METHOD_NAMES
                    and id(func) not in seen):
                yield from inspect(func, frozenset())
