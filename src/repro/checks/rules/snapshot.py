"""SIM001 — snapshot completeness.

Any class defining both ``snapshot()`` and ``restore()`` must account
for all of its mutable state, in two layers:

* **attribute coverage** — every ``self.<attr>`` that is (a) assigned
  a mutable value in ``__init__``/``__post_init__`` or (b) written by
  any run-time method must be touched by ``snapshot()`` or
  ``restore()``, unless the construction-time assignment carries a
  ``# repro-check: config`` / ``# repro-check: derived`` marker;
* **key symmetry** — when ``snapshot()`` returns a literal dict and
  ``restore()`` reads constant keys off its state argument, the two
  key sets must match exactly. This is what catches a key deleted
  from the snapshot dict (restore still reads it) *and* a key added
  to the snapshot that restore silently ignores.

This is precisely the bug class a missed ``self._x`` caused in the
in-flight-flows snapshot fix: state that existed, mutated every epoch,
and never made it into the serialized form.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.classinfo import (
    INIT_METHODS,
    AttrWrite,
    ClassInfo,
    collect_classes,
    is_mutable_value,
    returned_dict_keys,
    self_attr_uses,
    self_name,
    state_key_reads,
)
from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import Rule, register

RULE_ID = "SIM001"

#: Methods whose attribute writes do not make an attr "run-time state".
_NON_RUNTIME = INIT_METHODS + ("snapshot", "restore")


def _required_attrs(info: ClassInfo) -> dict[str, tuple[AttrWrite, str]]:
    """attr -> (anchor write, reason) for attrs snapshot must cover."""
    required: dict[str, tuple[AttrWrite, str]] = {}
    init_writes: dict[str, AttrWrite] = {}
    for write in info.writes_in(*INIT_METHODS):
        init_writes.setdefault(write.attr, write)
        if write.direct and is_mutable_value(write.value):
            required.setdefault(
                write.attr,
                (write, f"assigned a mutable value in {write.method}()"))
    for write in info.writes_outside(*_NON_RUNTIME):
        anchor = init_writes.get(write.attr, write)
        required.setdefault(
            write.attr, (anchor, f"written by {write.method}()"))
    return required


@register
class SnapshotCompleteness(Rule):
    rule_id = RULE_ID
    summary = ("snapshot()/restore() must cover every mutable attribute "
               "and use matching state keys")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for info in collect_classes(ctx.tree):
            if info.is_protocol:
                continue
            snap = info.methods.get("snapshot")
            restore = info.methods.get("restore")
            if snap is None or restore is None:
                continue  # unpaired methods are SIM003's business
            yield from self._check_attrs(ctx, info, snap, restore)
            yield from self._check_keys(ctx, info, snap, restore)

    def _check_attrs(self, ctx: ModuleContext, info: ClassInfo,
                     snap: ast.FunctionDef,
                     restore: ast.FunctionDef) -> Iterable[Finding]:
        covered = self_attr_uses(snap) | self_attr_uses(restore)
        for attr, (anchor, reason) in sorted(_required_attrs(info).items()):
            if attr in covered:
                continue
            if ctx.marker_in_range(anchor.node):
                continue
            yield ctx.finding(
                RULE_ID, anchor.node, key=f"{info.name}.{attr}",
                message=(f"{info.name}.{attr} is {reason} but never "
                         f"touched by snapshot()/restore(); serialize "
                         f"it or mark the assignment `# repro-check: "
                         f"config` / `# repro-check: derived`"))

    def _check_keys(self, ctx: ModuleContext, info: ClassInfo,
                    snap: ast.FunctionDef,
                    restore: ast.FunctionDef) -> Iterable[Finding]:
        written = returned_dict_keys(snap)
        if written is None:
            return  # snapshot dict not statically known
        params = [a.arg for a in (list(restore.args.posonlyargs)
                                  + list(restore.args.args))]
        selfname = self_name(restore)
        params = [p for p in params if p != selfname]
        if not params:
            return
        reads = state_key_reads(restore, params[0])
        if not reads:
            return  # restore consumes the dict dynamically
        for key in sorted(set(reads) - written):
            yield ctx.finding(
                RULE_ID, reads[key],
                key=f"{info.name}.key:{key}",
                message=(f"{info.name}.restore() reads state key "
                         f"{key!r} that snapshot() never writes"))
        for key in sorted(written - set(reads)):
            yield ctx.finding(
                RULE_ID, snap, key=f"{info.name}.key:{key}",
                message=(f"{info.name}.snapshot() writes key {key!r} "
                         f"that restore() never reads — state would "
                         f"be saved but silently not restored"))
