"""PY001 — mutable default argument.

A ``def f(x, acc=[])`` default is evaluated once at function
definition and shared across every call — the classic Python trap,
doubly dangerous in a codebase where accumulated state must be
snapshot-able. Flags list/dict/set displays, comprehensions, and
bare ``list()``/``dict()``/``set()``/``bytearray()`` calls used as
defaults; the fix is a ``None`` default materialized in the body
(or ``dataclasses.field(default_factory=...)``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import Rule, register

RULE_ID = "PY001"

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


def _defaults_with_names(args: ast.arguments):
    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(positional[len(positional)
                                       - len(args.defaults):],
                            args.defaults):
        yield arg.arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            yield arg.arg, default


@register
class MutableDefaultArgument(Rule):
    rule_id = RULE_ID
    summary = "no mutable default arguments"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            name = getattr(node, "name", "<lambda>")
            for param, default in _defaults_with_names(node.args):
                if _is_mutable_default(default):
                    yield ctx.finding(
                        RULE_ID, default, key=f"{name}.{param}",
                        message=(f"mutable default for parameter "
                                 f"{param!r} of {name}() is shared "
                                 f"across calls; default to None and "
                                 f"build it in the body"))
