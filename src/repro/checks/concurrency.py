"""Pass-1 concurrency index: a picklable, AST-free module summary.

The two-pass engine parses each file once and boils it down to a
:class:`ModuleSummary` — classes, methods, every attribute access with
the set of locks lexically held at that point, lock-object attributes,
``threading.Thread`` targets, waits/notifies, and the module's name
surface (used by SIM006 as twin-test evidence). Summaries hold no AST
nodes, so ``--jobs N`` can build them in worker processes and ship
them back through pickle; pass 2 (:mod:`repro.checks.rules.locks`,
:mod:`repro.checks.rules.twins`) runs over the merged
:class:`ProjectIndex`.

Lock tracking is lexical and name-based: any plain dotted expression
used as a ``with`` context (``with self._lock:``, ``with
session.updated:``) counts as a candidate acquisition — calls like
``with open(...)`` never do — and an access "holds" a lock when the
normalized expression text matches. The rules decide which candidate
expressions actually resolve to lock objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.checks.classinfo import INIT_METHODS, dotted_name, self_name

#: Constructor names whose result is a lock-like object, mapped to the
#: lock kind the rules care about. Covers both the raw ``threading``
#: primitives and the :mod:`repro.checks.runtime` factory seam.
LOCK_CONSTRUCTORS = {
    "Lock": "lock",
    "RLock": "lock",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
    "Condition": "condition",
    "new_lock": "lock",
    "new_condition": "condition",
    "SanitizedLock": "lock",
    "SanitizedCondition": "condition",
}

#: Method calls that mutate their receiver in place — treated as
#: writes to the receiving attribute by the guarded-by analysis.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "clear", "update", "setdefault", "add",
    "discard", "sort", "reverse",
})

_WAIT_NAMES = ("wait", "wait_for")
_NOTIFY_NAMES = ("notify", "notify_all")

#: Longest string constant indexed into a test module's name surface.
#: Twin tests toggle twins via flag kwargs (``**{"batch_step": False}``),
#: so short string literals count as references; long strings (doc
#: text) do not.
_NAME_STRING_MAX = 40


@dataclass(frozen=True)
class AttrAccess:
    """One read or write of ``<owner>.<attr>`` inside a method."""

    owner: str  #: normalized root name — "self" or the variable name
    attr: str
    kind: str  #: "read" | "write"
    line: int
    col: int
    held: tuple[str, ...]  #: lock expressions lexically held here


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <expr>:`` over a plain dotted expression."""

    expr: str
    line: int
    col: int
    held: tuple[str, ...]  #: locks already held when acquiring


@dataclass(frozen=True)
class CallSite:
    """A ``<owner>.<name>(...)`` call (owner is a bare name)."""

    owner: str
    name: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class WaitSite:
    """``<expr>.wait(...)`` / ``<expr>.wait_for(...)``."""

    expr: str
    line: int
    col: int
    held: tuple[str, ...]
    in_loop: bool
    is_wait_for: bool


@dataclass(frozen=True)
class NotifySite:
    """``<expr>.notify(...)`` / ``<expr>.notify_all(...)``."""

    expr: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass
class MethodSummary:
    name: str
    line: int
    col: int
    accesses: list[AttrAccess] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    waits: list[WaitSite] = field(default_factory=list)
    notifies: list[NotifySite] = field(default_factory=list)


@dataclass
class ClassSummary:
    name: str
    line: int
    col: int
    methods: dict[str, MethodSummary] = field(default_factory=dict)
    #: lock attribute -> "lock" | "condition"
    locks: dict[str, str] = field(default_factory=dict)
    #: own methods passed as ``Thread(target=self.<m>)`` anywhere in
    #: the class body.
    thread_targets: list[str] = field(default_factory=list)
    #: class-body attribute declarations (dataclass fields, class
    #: vars) — part of the attr-name ambiguity surface for SIM005's
    #: cross-object checks.
    declared: set = field(default_factory=set)


@dataclass
class ModuleSummary:
    """Everything pass 2 needs to know about one parsed module."""

    path: str
    is_test: bool
    #: True for files given via ``index_paths``: they feed resolution,
    #: twin-test evidence, and thread seeds, but never anchor findings.
    index_only: bool = False
    classes: list[ClassSummary] = field(default_factory=list)
    #: module-level function names (SIM006 oracle fallback).
    functions: frozenset = frozenset()
    #: identifier / attribute / kwarg / short-string surface of the
    #: module — what "this module references X" means for SIM006.
    names: frozenset = frozenset()
    #: ``Thread(target=...)`` targets that are not ``self.<m>``:
    #: trailing attribute or bare function names, resolved by pass 2.
    thread_target_names: list[str] = field(default_factory=list)
    #: line -> suppressed rule tokens, mirrored off the ModuleContext
    #: so project findings honor the anchoring file's directives.
    suppressions: dict[int, tuple[str, ...]] = field(default_factory=dict)
    file_suppressions: tuple[str, ...] = ()


def is_test_path(path: str) -> bool:
    """Test modules are named ``test_*.py`` (or ``conftest.py``) —
    directory placement alone doesn't count, so rule fixtures living
    under ``tests/checks/fixtures/`` are still analyzed as source."""
    stem = path.rsplit("/", 1)[-1]
    return stem.startswith("test_") or stem == "conftest.py"


def _plain_dotted(node: ast.expr) -> str | None:
    """``session.updated`` -> "session.updated"; anything with calls
    or subscripts -> None."""
    parts = dotted_name(node)
    return ".".join(parts) if parts else None


class _MethodWalker:
    """Walks one method body tracking the lexically-held lock set."""

    def __init__(self, selfname: str | None, summary: MethodSummary,
                 class_targets: list[str]) -> None:
        self.selfname = selfname
        self.out = summary
        self.class_targets = class_targets
        self.extra_targets: list[str] = []

    def _norm(self, text: str) -> str:
        """Rewrite the instance parameter to the literal "self"."""
        if self.selfname and self.selfname != "self":
            root, _, rest = text.partition(".")
            if root == self.selfname:
                return "self." + rest if rest else "self"
        return text

    def walk(self, stmts, held: tuple[str, ...], in_loop: bool) -> None:
        for stmt in stmts:
            self._visit(stmt, held, in_loop)

    def _visit(self, node: ast.AST, held, in_loop) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return  # nested scope: runs at another time, under other locks
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                self._visit(item.context_expr, held, in_loop)
                expr = _plain_dotted(item.context_expr)
                if expr is not None:
                    expr = self._norm(expr)
                    self.out.acquires.append(LockAcquire(
                        expr=expr, line=node.lineno,
                        col=node.col_offset, held=inner))
                    inner = inner + (expr,)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, inner, in_loop)
            self.walk(node.body, inner, in_loop)
            return
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            for child in ast.iter_child_nodes(node):
                self._visit(child, held, True)
            return
        self._record(node, held, in_loop)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, in_loop)

    def _record(self, node: ast.AST, held, in_loop) -> None:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                owner = ("self" if node.value.id == self.selfname
                         else node.value.id)
                kind = ("write"
                        if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "read")
                self.out.accesses.append(AttrAccess(
                    owner=owner, attr=node.attr, kind=kind,
                    line=node.lineno, col=node.col_offset, held=held))
            return
        if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            root = node.value
            while isinstance(root, ast.Subscript):
                root = root.value
            if (isinstance(root, ast.Attribute)
                    and isinstance(root.value, ast.Name)):
                owner = ("self" if root.value.id == self.selfname
                         else root.value.id)
                self.out.accesses.append(AttrAccess(
                    owner=owner, attr=root.attr, kind="write",
                    line=node.lineno, col=node.col_offset, held=held))
            return
        if isinstance(node, ast.Call):
            self._record_call(node, held, in_loop)

    def _record_call(self, node: ast.Call, held, in_loop) -> None:
        parts = dotted_name(node.func)
        if parts and parts[-1] == "Thread":
            self._record_thread_target(node)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        recv = _plain_dotted(func.value)
        if func.attr in _WAIT_NAMES and recv is not None:
            self.out.waits.append(WaitSite(
                expr=self._norm(recv), line=node.lineno,
                col=node.col_offset, held=held, in_loop=in_loop,
                is_wait_for=func.attr == "wait_for"))
        elif func.attr in _NOTIFY_NAMES and recv is not None:
            self.out.notifies.append(NotifySite(
                expr=self._norm(recv), line=node.lineno,
                col=node.col_offset, held=held))
        if func.attr in MUTATOR_METHODS and isinstance(
                func.value, ast.Attribute) and isinstance(
                func.value.value, ast.Name):
            owner = ("self" if func.value.value.id == self.selfname
                     else func.value.value.id)
            self.out.accesses.append(AttrAccess(
                owner=owner, attr=func.value.attr, kind="write",
                line=node.lineno, col=node.col_offset, held=held))
        if isinstance(func.value, ast.Name):
            owner = ("self" if func.value.id == self.selfname
                     else func.value.id)
            self.out.calls.append(CallSite(
                owner=owner, name=func.attr, line=node.lineno,
                col=node.col_offset, held=held))

    def _record_thread_target(self, node: ast.Call) -> None:
        target = next((kw.value for kw in node.keywords
                       if kw.arg == "target"), None)
        if target is None:
            return
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self.selfname):
            self.class_targets.append(target.attr)
        elif isinstance(target, ast.Attribute):
            self.extra_targets.append(target.attr)
        elif isinstance(target, ast.Name):
            self.extra_targets.append(target.id)


def _lock_kind(value: ast.expr) -> str | None:
    """"lock"/"condition" when ``value`` constructs a lock object."""
    if not isinstance(value, ast.Call):
        return None
    parts = dotted_name(value.func)
    return LOCK_CONSTRUCTORS.get(parts[-1]) if parts else None


def _summarize_class(
        node: ast.ClassDef) -> tuple[ClassSummary, list[str]]:
    """(class summary, thread targets pointing outside the class)."""
    cls = ClassSummary(name=node.name, line=node.lineno,
                       col=node.col_offset)
    extra: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name):
            cls.declared.add(stmt.target.id)
            kind = _lock_kind(stmt.value) if stmt.value else None
            if kind:
                cls.locks[stmt.target.id] = kind
        elif isinstance(stmt, ast.Assign):
            cls.declared.update(t.id for t in stmt.targets
                                if isinstance(t, ast.Name))
            kind = (_lock_kind(stmt.value)
                    if isinstance(stmt.value, ast.Call) else None)
            if kind:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.locks[target.id] = kind
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        selfname = self_name(stmt)
        method = MethodSummary(name=stmt.name, line=stmt.lineno,
                               col=stmt.col_offset)
        walker = _MethodWalker(selfname, method, cls.thread_targets)
        walker.walk(stmt.body, held=(), in_loop=False)
        extra.extend(walker.extra_targets)
        cls.methods[stmt.name] = method
        if selfname is None:
            continue
        # Lock attributes: ``self.<attr> = threading.Condition()`` /
        # ``new_lock(...)`` in any method (factories usually live in
        # __init__/__post_init__, but re-creation counts too).
        for sub in ast.walk(stmt):
            targets = ()
            value = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = (sub.target,), sub.value
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == selfname):
                    kind = _lock_kind(value)
                    if kind:
                        cls.locks[target.attr] = kind
    # Non-self thread targets found inside this class body are module
    # business (they point at other objects' methods).
    return cls, extra


def _name_surface(tree: ast.Module) -> frozenset:
    """Identifiers, attribute names, kwarg names, and short string
    constants appearing anywhere in the module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg:
            names.add(node.arg)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and 0 < len(node.value) <= _NAME_STRING_MAX
                and node.value.isidentifier()):
            names.add(node.value)
    return frozenset(names)


def build_summary(tree: ast.Module, path: str,
                  suppressions: dict[int, set[str]] | None = None,
                  file_suppressions: set[str] | None = None,
                  index_only: bool = False) -> ModuleSummary:
    """Build the pass-1 summary for one parsed module."""
    summary = ModuleSummary(
        path=path, is_test=is_test_path(path), index_only=index_only,
        suppressions={line: tuple(sorted(rules)) for line, rules
                      in (suppressions or {}).items()},
        file_suppressions=tuple(sorted(file_suppressions or ())))
    functions: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.add(node.name)
    module_targets: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            cls, extra = _summarize_class(node)
            module_targets.extend(extra)
            summary.classes.append(cls)
    # Thread targets in module-level code (incl. inside plain
    # functions): collect every Thread(target=...) not owned by a class.
    collector = _ModuleTargetCollector()
    collector.visit(tree)
    module_targets.extend(collector.targets)
    summary.functions = frozenset(functions)
    summary.names = _name_surface(tree)
    summary.thread_target_names = sorted(set(module_targets))
    return summary


class _ModuleTargetCollector(ast.NodeVisitor):
    """``Thread(target=...)`` sites outside class bodies."""

    def __init__(self) -> None:
        self.targets: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # class bodies handled by _summarize_class

    def visit_Call(self, node: ast.Call) -> None:
        parts = dotted_name(node.func)
        if parts and parts[-1] == "Thread":
            target = next((kw.value for kw in node.keywords
                           if kw.arg == "target"), None)
            if isinstance(target, ast.Attribute):
                self.targets.append(target.attr)
            elif isinstance(target, ast.Name):
                self.targets.append(target.id)
        self.generic_visit(node)


class ProjectIndex:
    """Merged pass-1 summaries plus the resolution tables pass 2 uses."""

    def __init__(self, modules: list[ModuleSummary]) -> None:
        self.modules = modules
        self.source_modules = [m for m in modules if not m.is_test]
        self.test_modules = [m for m in modules if m.is_test]
        #: class name -> [(module, class)] over non-test modules.
        self.classes: dict[str, list] = {}
        #: method name -> [(module, class)] over non-test modules.
        self.method_owners: dict[str, list] = {}
        #: guarded attr name -> [(module, class, lock attrs)] — built
        #: lazily by SIM005 via :meth:`set_guard_table`.
        self._directives: dict[str, tuple] = {}
        for mod in modules:
            self._directives[mod.path] = (mod.suppressions,
                                          mod.file_suppressions)
        for mod in self.source_modules:
            for cls in mod.classes:
                self.classes.setdefault(cls.name, []).append((mod, cls))
                for name in cls.methods:
                    self.method_owners.setdefault(name, []).append(
                        (mod, cls))

    def resolve_method(self, name: str):
        """The unique (module, class) defining ``name``, or None.

        Deliberately refuses ambiguous names (``to_dict``, ``restore``)
        — cross-class reasoning only follows edges it can prove."""
        owners = self.method_owners.get(name, [])
        return owners[0] if len(owners) == 1 else None

    def directives_for(self, path: str):
        """(line suppressions, file suppressions) of a summarized file."""
        return self._directives.get(path, ({}, ()))
