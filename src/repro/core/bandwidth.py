"""Bandwidth satisfaction analysis (paper §VI-A).

Case (A): six parallel AWGRs give every MCM pair >= 5 direct
wavelengths (125 Gbps). Against the production demand profile, that
direct bandwidth suffices >99.5% of the time for CPU-memory pairs and
essentially always for NIC-memory; a single 25 Gbps wavelength covers
97%, so with high probability four of a pair's five wavelengths are
free to lend to congested neighbours through indirect routing.

For GPUs: with indirect routing a GPU MCM can gather the full escape
bandwidth of its HBM partners — 125 Gbps x 512 wavelength-paths =
8,000 GB/s toward any one HBM — of which 1,555.2 GB/s feeds native HBM
traffic, 900 GB/s absorbs the NVLink-replacement GPU-GPU traffic, and
~5.5 TB/s remains for GPUDirect-style HBM-HBM or extra memory
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rack.design import AWGRFabricPlan, plan_awgr_fabric
from repro.workloads.cori import CORI_PROFILES


@dataclass(frozen=True)
class BandwidthSufficiency:
    """Probability the direct path covers a traffic class's demand."""

    traffic_class: str
    direct_gbps: float
    p_sufficient: float
    p_single_wavelength: float


def direct_bandwidth_sufficiency(direct_gbps: float = 125.0,
                                 wavelength_gbps: float = 25.0,
                                 peak_gbps: float = 1638.4,
                                 resource: str = "memory_bandwidth",
                                 ) -> BandwidthSufficiency:
    """Probability the AWGR direct path covers a demand profile.

    ``peak_gbps`` converts the utilization profile (fraction of peak)
    into absolute demand; the default is the CPU's 204.8 GB/s memory
    system in Gbps.
    """
    profile = CORI_PROFILES[resource]
    mu_sigma = profile.lognormal_params
    import math

    from scipy import stats

    mu, sigma = mu_sigma
    # P(demand <= direct) with demand = utilization * peak.
    frac = direct_gbps / peak_gbps
    p_direct = float(stats.norm.cdf((math.log(frac) - mu) / sigma))
    frac_one = wavelength_gbps / peak_gbps
    p_one = float(stats.norm.cdf((math.log(frac_one) - mu) / sigma))
    return BandwidthSufficiency(
        traffic_class=resource,
        direct_gbps=direct_gbps,
        p_sufficient=min(1.0, p_direct),
        p_single_wavelength=min(1.0, p_one))


@dataclass(frozen=True)
class GPUBandwidthBudget:
    """The §VI-A GPU arithmetic, all in GB/s."""

    indirect_total_gbyte_s: float      # 8,000 for the paper's design
    hbm_demand_gbyte_s: float          # 1,555.2
    gpu_gpu_demand_gbyte_s: float      # 900 (12 NVLink x 25 x 3 GPUs)
    @property
    def after_hbm_gbyte_s(self) -> float:
        """Headroom once native HBM traffic is served (6,444.8)."""
        return self.indirect_total_gbyte_s - self.hbm_demand_gbyte_s

    @property
    def after_gpu_gpu_gbyte_s(self) -> float:
        """Headroom once GPU-GPU traffic is also absorbed (5,544.8)."""
        return self.after_hbm_gbyte_s - self.gpu_gpu_demand_gbyte_s

    @property
    def satisfied(self) -> bool:
        """Does the budget cover both demands?"""
        return self.after_gpu_gpu_gbyte_s >= 0


def gpu_bandwidth_budget(direct_pair_gbps: float = 125.0,
                         hbm_mcms: int = 128,
                         gpus_per_mcm: int = 3,
                         nvlink_gbyte_s: float = 25.0,
                         nvlinks_per_gpu: int = 12,
                         hbm_gbyte_s: float = 1555.2,
                         wavelength_paths: int = 512) -> GPUBandwidthBudget:
    """Reproduce the §VI-A GPU budget.

    The paper's arithmetic: with indirect routing a GPU can use
    ``direct_pair_gbps x wavelength_paths = 125 x 512 = 8000 GB/s``
    (units: 125 Gbps of direct bandwidth toward each of 512 possible
    wavelength-sharing partners, expressed in GB/s after the paper's
    own conversion) to reach any one HBM; GPU-GPU worst case is an MCM
    of 3 GPUs each driving 12 NVLink-class links of 25 GB/s = 900 GB/s.
    """
    del hbm_mcms  # documented input of the paper's argument; not needed
    indirect_total = direct_pair_gbps * wavelength_paths / 8.0
    gpu_gpu = gpus_per_mcm * nvlinks_per_gpu * nvlink_gbyte_s
    return GPUBandwidthBudget(
        indirect_total_gbyte_s=indirect_total,
        hbm_demand_gbyte_s=hbm_gbyte_s,
        gpu_gpu_demand_gbyte_s=gpu_gpu)


@dataclass(frozen=True)
class AWGRBandwidthReport:
    """Summary of the case-(A) analysis."""

    guaranteed_pair_gbps: float
    cpu_memory: BandwidthSufficiency
    nic_memory: BandwidthSufficiency
    gpu_budget: GPUBandwidthBudget

    @property
    def all_satisfied(self) -> bool:
        """Case (A) satisfies every traffic class (the §VI-A claim)."""
        return (self.cpu_memory.p_sufficient >= 0.99
                and self.nic_memory.p_sufficient >= 0.99
                and self.gpu_budget.satisfied)


def awgr_bandwidth_analysis(plan: AWGRFabricPlan | None = None,
                            ) -> AWGRBandwidthReport:
    """Run the full §VI-A case-(A) analysis on a fabric plan."""
    plan = plan if plan is not None else plan_awgr_fabric()
    direct = plan.guaranteed_pair_gbps()
    cpu_mem = direct_bandwidth_sufficiency(
        direct_gbps=direct, peak_gbps=204.8 * 8, resource="memory_bandwidth")
    nic_mem = direct_bandwidth_sufficiency(
        direct_gbps=direct, peak_gbps=200.0, resource="nic_bandwidth")
    return AWGRBandwidthReport(
        guaranteed_pair_gbps=direct,
        cpu_memory=cpu_mem,
        nic_memory=nic_mem,
        gpu_budget=gpu_bandwidth_budget(direct_pair_gbps=direct))
