"""Rack power-overhead analysis (paper §VI-C).

Photonic components (comb-laser transceivers at 0.5 pJ/bit, assumed
always on, plus <= 1 kW of switches) add ~11 kW to a 128-node rack
whose compute (CPUs + GPUs + DDR4) draws ~220 kW — an overhead of
approximately 5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.power import TransceiverPower, photonic_rack_power_w
from repro.rack.baseline import BaselineRack
from repro.rack.mcm import MCMConfig, pack_rack, total_mcms


@dataclass(frozen=True)
class PowerOverheadResult:
    """Photonic power against the rack's compute power."""

    photonic_w: float
    compute_w: float

    @property
    def overhead_fraction(self) -> float:
        """Photonic power / compute power (~0.05)."""
        return self.photonic_w / self.compute_w


def rack_power_overhead(rack: BaselineRack | None = None,
                        mcm: MCMConfig | None = None,
                        transceiver: TransceiverPower | None = None,
                        switch_power_w: float = 1000.0,
                        ) -> PowerOverheadResult:
    """Compute the §VI-C power overhead for a rack configuration."""
    rack = rack if rack is not None else BaselineRack()
    mcm = mcm if mcm is not None else MCMConfig()
    n_mcms = total_mcms(pack_rack(rack, mcm))
    photonic = photonic_rack_power_w(
        n_mcms=n_mcms,
        wavelengths_per_mcm=mcm.wavelengths,
        gbps_per_wavelength=mcm.gbps_per_wavelength,
        transceiver=transceiver,
        switch_power_w=switch_power_w)
    return PowerOverheadResult(photonic_w=photonic,
                               compute_w=rack.compute_power_w())
