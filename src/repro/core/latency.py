"""Disaggregation latency composition (paper §III-C2, §VI-B).

The 35 ns the study adds between the LLC and main memory decomposes
as: ~15 ns for electrical-optical-electrical conversion (SERDES, ring
modulation, FEC) plus 4 meters of fiber at 5 ns/m covering the
round-trip span of a two-meter rack. Shorter reaches or better
transceivers give the 25/30 ns sensitivity points of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import FIBER_NS_PER_METER, propagation_latency_ns


@dataclass(frozen=True)
class LatencyBudget:
    """Additive latency budget for one disaggregated memory access path.

    Parameters
    ----------
    eoe_conversion_ns:
        Electrical-optical-electrical conversion including SERDES,
        modulation, and FEC (paper: 15 ns).
    fiber_m:
        One-way fiber length covered (paper: 4 m worst case,
        round-trip of a 2 m rack).
    ns_per_meter:
        Fiber propagation latency (5 ns/m).
    """

    eoe_conversion_ns: float = 15.0
    fiber_m: float = 4.0
    ns_per_meter: float = FIBER_NS_PER_METER

    def __post_init__(self) -> None:
        if self.eoe_conversion_ns < 0 or self.fiber_m < 0:
            raise ValueError("latency components must be >= 0")

    @property
    def propagation_ns(self) -> float:
        """Fiber propagation share."""
        return propagation_latency_ns(self.fiber_m, self.ns_per_meter)

    @property
    def total_ns(self) -> float:
        """Total added latency (35 ns with defaults)."""
        return self.eoe_conversion_ns + self.propagation_ns

    def with_fiber(self, fiber_m: float) -> "LatencyBudget":
        """Budget for a different reach (e.g. 2 m => 25 ns)."""
        return LatencyBudget(eoe_conversion_ns=self.eoe_conversion_ns,
                             fiber_m=fiber_m,
                             ns_per_meter=self.ns_per_meter)

    def dram_latency_fraction(self, dram_ns: float = 90.0) -> float:
        """Added latency as a fraction of typical DRAM latency.

        §III-C2 quotes rack-scale propagation as "approximately less
        than 20% of the typical DRAM latency"; this exposes the ratio
        for the full budget.
        """
        if dram_ns <= 0:
            raise ValueError("dram_ns must be positive")
        return self.total_ns / dram_ns


#: The study's worst-case budget (35 ns).
PHOTONIC_BUDGET = LatencyBudget()


def photonic_disaggregation_latency_ns(fiber_m: float = 4.0,
                                       eoe_conversion_ns: float = 15.0,
                                       ) -> float:
    """Added LLC<->memory latency for a photonic intra-rack fabric."""
    return LatencyBudget(eoe_conversion_ns=eoe_conversion_ns,
                         fiber_m=fiber_m).total_ns


#: The three sensitivity points of Fig. 8 / Fig. 9.
SENSITIVITY_POINTS_NS: tuple[float, ...] = (25.0, 30.0, 35.0)
