"""Photonic vs. electronic disaggregation comparison (Fig. 12, §VI-D).

For every benchmark, the speedup of the photonic rack (35 ns adder)
over an identical rack built with the best electronic switches (85 ns
adder) is the ratio of their slowed-down execution times::

    speedup = (1 + slowdown_electronic) / (1 + slowdown_photonic) - 1

Reported per suite with PARSEC counted at its medium input only, as
the paper does "to avoid counting PARSEC benchmarks three times".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.slowdown import run_cpu_study, run_gpu_study
from repro.cpu.simulator import CPUSimulator
from repro.gpu.memory import GPUMemoryModel
from repro.gpu.model import A100Model
from repro.network.electronic import electronic_disaggregation_latency_ns
from repro.workloads.cpu_suites import (
    nas_benchmarks,
    parsec_benchmarks,
    rodinia_cpu_benchmarks,
)
from repro.workloads.gpu_suites import gpu_applications


@dataclass(frozen=True)
class SpeedupEntry:
    """Photonic-over-electronic speedup for one benchmark/core."""

    name: str
    core: str            # "inorder" | "ooo" | "gpu"
    photonic_slowdown: float
    electronic_slowdown: float

    @property
    def speedup(self) -> float:
        """Relative speedup of photonic over electronic (>0 = faster)."""
        return ((1.0 + self.electronic_slowdown)
                / (1.0 + self.photonic_slowdown) - 1.0)


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate Fig. 12 numbers for one core type."""

    core: str
    mean_speedup: float
    max_speedup: float
    n: int


def _fig12_cpu_benchmarks():
    """PARSEC medium + all NAS classes + Rodinia (the Fig. 12 set)."""
    benches = list(parsec_benchmarks("medium"))
    for cls in ("A", "B", "C"):
        benches.extend(nas_benchmarks(cls))
    benches.extend(rodinia_cpu_benchmarks())
    return tuple(benches)


#: Fraction of the photonic per-MCM bandwidth an electronic fabric
#: sustains. §VI-D: one PCIe Gen5 / Anton-3 lane per endpoint carries
#: 29-32 Gbps, "multiple times less than the per-chip bandwidth of our
#: photonic architecture"; GPUs, being bandwidth-hungry, feel this as a
#: throttled HBM path. 0.2 (5x less) lands the GPU comparison at the
#: paper's ~61% average speedup.
GPU_ELECTRONIC_BANDWIDTH_DERATE = 0.2


def electronic_vs_photonic(photonic_ns: float = 35.0,
                           electronic_ns: float | None = None,
                           simulator: CPUSimulator | None = None,
                           gpu_bandwidth_derate: float =
                           GPU_ELECTRONIC_BANDWIDTH_DERATE,
                           ) -> tuple[list[SpeedupEntry],
                                      list[ComparisonSummary]]:
    """Run the full Fig. 12 comparison.

    Returns per-benchmark entries and per-core summaries. The
    electronic adder defaults to the best §VI-D technology (85 ns via
    a PCIe Gen5 tree); the electronic GPU case additionally throttles
    HBM bandwidth by ``gpu_bandwidth_derate``.
    """
    if electronic_ns is None:
        electronic_ns = electronic_disaggregation_latency_ns()
    if not 0 < gpu_bandwidth_derate <= 1:
        raise ValueError("gpu_bandwidth_derate must be in (0, 1]")
    sim = simulator if simulator is not None else CPUSimulator()
    benches = _fig12_cpu_benchmarks()

    entries: list[SpeedupEntry] = []
    photonic = {(r.name, r.core): r.slowdown
                for r in run_cpu_study(photonic_ns, benches, simulator=sim)}
    electronic = {(r.name, r.core): r.slowdown
                  for r in run_cpu_study(electronic_ns, benches,
                                         simulator=sim)}
    for key in photonic:
        name, core = key
        entries.append(SpeedupEntry(
            name=name, core=core,
            photonic_slowdown=photonic[key],
            electronic_slowdown=electronic[key]))

    gpu_photonic = {g.name: g.slowdown for g in run_gpu_study(photonic_ns)}
    base_model = A100Model()
    throttled = GPUMemoryModel(
        extra_latency_ns=electronic_ns,
        hbm_bandwidth_gbyte_s=(base_model.memory.hbm_bandwidth_gbyte_s
                               * gpu_bandwidth_derate))
    for app in gpu_applications():
        base_cycles = base_model.application_cycles(app).cycles
        elec_cycles = base_model.application_cycles(app, throttled).cycles
        entries.append(SpeedupEntry(
            name=app.name, core="gpu",
            photonic_slowdown=gpu_photonic[app.name],
            electronic_slowdown=elec_cycles / base_cycles - 1.0))

    summaries = []
    for core in ("inorder", "ooo", "gpu"):
        speedups = np.array([e.speedup for e in entries if e.core == core])
        summaries.append(ComparisonSummary(
            core=core,
            mean_speedup=float(speedups.mean()),
            max_speedup=float(speedups.max()),
            n=speedups.size))
    return entries, summaries
