"""Iso-performance resource comparison (paper §VI-E).

Two effects combine:

1. **Latency penalty** — the disaggregated rack's 35 ns adder slows
   applications, so preserving rack-level computational throughput
   needs more compute: +15% CPUs (the in-order average, the worst
   case) and +6% GPUs (from the GPU study's ~5.35% average).
2. **Pooling gain** — production under-utilization means pooled
   (disaggregated) memory and NICs can be provisioned for aggregate
   demand instead of per-node peaks: 4x fewer DDR4 modules and 2x
   fewer NICs (from [15]'s Cori analysis, which our synthetic
   utilization profiles reproduce).

Module accounting follows the paper's: per baseline node 1 CPU +
4 GPUs (HBM folded in) + 8 DDR4 + 2 NICs = 15 modules x 128 nodes =
1920; the disaggregated equivalent lands at ~1075, a ~44% reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rack.baseline import BaselineRack
from repro.rack.chips import ChipType
from repro.workloads.cori import CORI_PROFILES


@dataclass(frozen=True)
class IsoPerfResult:
    """Module counts for baseline and iso-performance disaggregated racks."""

    baseline_modules: dict[ChipType, int]
    disaggregated_modules: dict[ChipType, float]
    cpu_overprovision: float
    gpu_overprovision: float
    memory_reduction: float
    nic_reduction: float

    @property
    def baseline_total(self) -> int:
        """Total baseline modules (1920 for the default rack)."""
        return sum(self.baseline_modules.values())

    @property
    def disaggregated_total(self) -> float:
        """Total disaggregated modules (~1075)."""
        return sum(self.disaggregated_modules.values())

    @property
    def module_reduction(self) -> float:
        """Fractional chip-count reduction (~0.44)."""
        return 1.0 - self.disaggregated_total / self.baseline_total


def pooling_reduction_factor(resource: str, n_nodes: int = 128,
                             service_quantile: float = 0.99,
                             headroom: float = 1.15,
                             n_snapshots: int = 400,
                             seed: int = 0) -> float:
    """How many times fewer modules pooled provisioning needs.

    Samples per-node utilization snapshots from the Cori-like profile,
    takes the ``service_quantile`` of *aggregate* rack demand, adds
    engineering ``headroom``, and compares with per-node provisioning
    (one full module set per node). Because per-node tails are heavy
    but rarely simultaneous, the aggregate concentrates near the mean
    — the statistical-multiplexing gain disaggregation captures.
    """
    profile = CORI_PROFILES[resource]
    rng = np.random.default_rng(seed)
    aggregates = np.empty(n_snapshots)
    for i in range(n_snapshots):
        aggregates[i] = profile.sample(n_nodes, rng).mean()
    needed_fraction = float(np.quantile(aggregates, service_quantile))
    needed_fraction = min(1.0, needed_fraction * headroom)
    if needed_fraction <= 0:
        raise RuntimeError("degenerate utilization profile")
    return 1.0 / needed_fraction


def iso_performance_comparison(rack: BaselineRack | None = None,
                               cpu_slowdown: float = 0.15,
                               gpu_slowdown: float = 0.0535,
                               memory_reduction: float | None = 4.0,
                               nic_reduction: float | None = 2.0,
                               ) -> IsoPerfResult:
    """Reproduce the §VI-E module arithmetic.

    ``cpu_slowdown`` / ``gpu_slowdown`` should come from the slowdown
    studies (in-order CPU average — the worst case — and the GPU
    average). ``memory_reduction`` / ``nic_reduction`` default to the
    paper's 4x / 2x; pass ``None`` to derive them empirically from the
    pooled-provisioning model.
    """
    rack = rack if rack is not None else BaselineRack()
    if memory_reduction is None:
        memory_reduction = pooling_reduction_factor("memory_capacity",
                                                    rack.n_nodes)
    if nic_reduction is None:
        nic_reduction = pooling_reduction_factor("nic_bandwidth",
                                                 rack.n_nodes)
    if memory_reduction <= 0 or nic_reduction <= 0:
        raise ValueError("reduction factors must be positive")

    baseline = rack.module_counts()
    cpu_factor = 1.0 + cpu_slowdown
    gpu_factor = 1.0 / (1.0 - gpu_slowdown)
    disagg = {
        ChipType.CPU: baseline[ChipType.CPU] * cpu_factor,
        ChipType.GPU: baseline[ChipType.GPU] * gpu_factor,
        ChipType.DDR4: baseline[ChipType.DDR4] / memory_reduction,
        ChipType.NIC: baseline[ChipType.NIC] / nic_reduction,
    }
    return IsoPerfResult(
        baseline_modules=baseline,
        disaggregated_modules=disagg,
        cpu_overprovision=cpu_factor - 1.0,
        gpu_overprovision=gpu_factor - 1.0,
        memory_reduction=memory_reduction,
        nic_reduction=nic_reduction)


def double_throughput_alternative(rack: BaselineRack | None = None,
                                  ) -> dict[str, float]:
    """The §VI-E alternative: keep all resources, add 128 CPU/GPU MCM
    modules (~7% more chips) to double computational throughput."""
    rack = rack if rack is not None else BaselineRack()
    baseline_total = rack.total_modules()
    added = rack.n_nodes  # 128 extra compute modules
    return {
        "baseline_modules": float(baseline_total),
        "added_modules": float(added),
        "chip_increase": added / baseline_total,
        "throughput_factor": 2.0,
    }


__all__ = ["IsoPerfResult", "iso_performance_comparison",
           "pooling_reduction_factor", "double_throughput_alternative"]
