"""Rack-level job scheduler over the disaggregated allocator.

A minimal event-driven FCFS-with-backfill scheduler: jobs arrive with
durations, wait until their full demand fits the pools, run, and
release. The paper argues (§III-D3) that job dynamics are slow —
"multi-node jobs start every few seconds and last from minutes to
hours" — so even millisecond-scale photonic reconfiguration is ample;
the scheduler exposes the event rate so that claim can be checked
against the switch catalog's reconfiguration times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.allocation import (
    AllocationError,
    DisaggregatedAllocator,
    JobRequest,
)


@dataclass(frozen=True)
class ScheduledJob:
    """One job with arrival time and duration (seconds)."""

    request: JobRequest
    arrival_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0 or self.duration_s <= 0:
            raise ValueError(
                f"{self.request.job_id}: bad arrival/duration")


@dataclass(frozen=True)
class JobRecord:
    """Completed-job accounting."""

    job_id: str
    arrival_s: float
    start_s: float
    end_s: float

    @property
    def wait_s(self) -> float:
        """Queueing delay."""
        return self.start_s - self.arrival_s


@dataclass
class RackScheduler:
    """FCFS scheduler with conservative backfill over pooled resources."""

    allocator: DisaggregatedAllocator
    backfill: bool = True
    records: list[JobRecord] = field(default_factory=list)
    reconfigurations: int = 0

    def run(self, jobs: list[ScheduledJob]) -> list[JobRecord]:
        """Simulate the full job stream; returns completion records."""
        pending = sorted(jobs, key=lambda j: (j.arrival_s,
                                              j.request.job_id))
        queue: list[ScheduledJob] = []
        running: list[tuple[float, str, ScheduledJob]] = []  # (end, id, job)
        now = 0.0
        i = 0
        self.records = []
        self.reconfigurations = 0

        while i < len(pending) or queue or running:
            # Advance time to the next event (arrival or completion).
            next_arrival = pending[i].arrival_s if i < len(pending) else None
            next_completion = running[0][0] if running else None
            candidates = [t for t in (next_arrival, next_completion)
                          if t is not None]
            if not candidates and queue:
                raise RuntimeError(
                    "queued jobs can never start: "
                    + ", ".join(j.request.job_id for j in queue))
            now = min(candidates)

            # Retire completions at `now`.
            while running and running[0][0] <= now:
                _, job_id, _ = heapq.heappop(running)
                self.allocator.release(job_id)
                self.reconfigurations += 1

            # Admit arrivals at `now`.
            while i < len(pending) and pending[i].arrival_s <= now:
                queue.append(pending[i])
                i += 1

            # Start whatever fits (FCFS head first; backfill optionally).
            # Track started positions and rebuild the queue once: the
            # old `queue.remove(job)` pattern rescanned the queue per
            # started job, O(n^2) on bursty arrivals.
            started_pos: set[int] = set()
            for pos, job in enumerate(queue):
                if pos > 0 and not self.backfill:
                    break
                if self.allocator.can_allocate(job.request):
                    try:
                        self.allocator.allocate(job.request)
                    except AllocationError:  # pragma: no cover - raced
                        continue
                    heapq.heappush(running,
                                   (now + job.duration_s,
                                    job.request.job_id, job))
                    self.records.append(JobRecord(
                        job_id=job.request.job_id,
                        arrival_s=job.arrival_s,
                        start_s=now,
                        end_s=now + job.duration_s))
                    self.reconfigurations += 1
                    started_pos.add(pos)
                elif pos == 0 and not self.backfill:
                    break
            if started_pos:
                queue = [job for pos, job in enumerate(queue)
                         if pos not in started_pos]

            # Nothing running and head of queue cannot ever fit?
            if not running and queue and not any(
                    self.allocator.can_allocate(j.request) for j in queue):
                bad = queue[0].request.job_id
                raise AllocationError(
                    f"job {bad} exceeds total rack capacity")

        self.records.sort(key=lambda r: (r.start_s, r.job_id))
        return self.records

    def reconfiguration_rate_hz(self) -> float:
        """Fabric reconfiguration events per second of simulated time.

        Each job start/finish changes the traffic pattern once; the
        §III-D3 argument needs this to stay far below 1/reconfig-time.
        """
        if not self.records:
            return 0.0
        span = max(r.end_s for r in self.records) - min(
            r.arrival_s for r in self.records)
        if span <= 0:
            return float("inf")
        return self.reconfigurations / span
