"""The paper's primary contribution: photonic intra-rack disaggregation
analyses — latency composition, bandwidth satisfaction, application
slowdown studies, the electronic comparison, power overhead, and the
iso-performance resource-reduction estimate.
"""

from repro.core.latency import (
    LatencyBudget,
    photonic_disaggregation_latency_ns,
    PHOTONIC_BUDGET,
)
from repro.core.slowdown import (
    run_cpu_study,
    run_gpu_study,
    suite_summary,
    cpu_gpu_rodinia_comparison,
)
from repro.core.comparison import electronic_vs_photonic
from repro.core.bandwidth import (
    awgr_bandwidth_analysis,
    gpu_bandwidth_budget,
    direct_bandwidth_sufficiency,
)
from repro.core.power import rack_power_overhead
from repro.core.isoperf import iso_performance_comparison, IsoPerfResult
from repro.core.allocation import (
    JobRequest,
    ResourcePool,
    DisaggregatedAllocator,
    AllocationError,
)
from repro.core.scheduler import RackScheduler, ScheduledJob
from repro.core.placement import (
    MCMDirectory,
    PlacementEngine,
    JobPlacement,
)

__all__ = [
    "LatencyBudget", "photonic_disaggregation_latency_ns", "PHOTONIC_BUDGET",
    "run_cpu_study", "run_gpu_study", "suite_summary",
    "cpu_gpu_rodinia_comparison",
    "electronic_vs_photonic",
    "awgr_bandwidth_analysis", "gpu_bandwidth_budget",
    "direct_bandwidth_sufficiency",
    "rack_power_overhead",
    "iso_performance_comparison", "IsoPerfResult",
    "JobRequest", "ResourcePool", "DisaggregatedAllocator", "AllocationError",
    "RackScheduler", "ScheduledJob",
    "MCMDirectory", "PlacementEngine", "JobPlacement",
]
