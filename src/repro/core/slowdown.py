"""Slowdown studies: the Fig. 6-11 experiment runners.

These drive the CPU and GPU substrates over the calibrated workload
tables and aggregate results the way the paper's figures do (per-suite
average/maximum, per-benchmark scatter against LLC miss rate, CPU-GPU
comparison on the shared Rodinia subset).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.cpu.simulator import CPUSimulator, SlowdownResult
from repro.gpu.model import A100Model
from repro.workloads.cpu_suites import CPUBenchmark, all_cpu_benchmarks
from repro.workloads.gpu_suites import (
    RODINIA_INTERSECTION,
    gpu_applications,
)


def run_cpu_study(extra_latency_ns: float = 35.0,
                  benchmarks: tuple[CPUBenchmark, ...] | None = None,
                  cores: tuple[str, ...] = ("inorder", "ooo"),
                  simulator: CPUSimulator | None = None,
                  ) -> list[SlowdownResult]:
    """Run every benchmark on the requested core types at one adder.

    Each benchmark's synthetic trace is generated once and reused for
    both core types (as in the paper, where the same gem5 checkpoint
    feeds both core models).
    """
    sim = simulator if simulator is not None else CPUSimulator()
    benches = benchmarks if benchmarks is not None else all_cpu_benchmarks()
    results: list[SlowdownResult] = []
    for bench in benches:
        spec = bench.trace_spec()
        stats = sim.cache_stats(spec)
        if "inorder" in cores:
            results.append(sim.run_inorder(
                spec, extra_latency_ns, cpi_base=bench.cpi_inorder,
                stats=stats))
        if "ooo" in cores:
            results.append(sim.run_ooo(
                spec, extra_latency_ns, cpi_exec=bench.cpi_ooo,
                mlp=bench.mlp(), stats=stats))
    return results


@dataclass(frozen=True)
class SuiteSummary:
    """Average/maximum slowdown for one (suite, input, core) group."""

    suite: str
    input_size: str
    core: str
    mean_slowdown: float
    max_slowdown: float
    n: int


def suite_summary(results: list[SlowdownResult]) -> list[SuiteSummary]:
    """Group results as Fig. 6 does: per suite x input size x core."""
    groups: dict[tuple[str, str, str], list[float]] = defaultdict(list)
    for res in results:
        suite, _, input_size = res.name.split(".")
        groups[(suite, input_size, res.core)].append(res.slowdown)
    out = []
    for (suite, input_size, core), values in sorted(groups.items()):
        arr = np.asarray(values)
        out.append(SuiteSummary(suite=suite, input_size=input_size,
                                core=core,
                                mean_slowdown=float(arr.mean()),
                                max_slowdown=float(arr.max()),
                                n=arr.size))
    return out


def overall_mean(results: list[SlowdownResult], core: str) -> float:
    """Mean slowdown across all benchmarks for one core type."""
    values = [r.slowdown for r in results if r.core == core]
    if not values:
        raise ValueError(f"no results for core {core!r}")
    return float(np.mean(values))


@dataclass(frozen=True)
class GPUSlowdown:
    """One GPU application's slowdown at one latency point."""

    name: str
    suite: str
    extra_latency_ns: float
    slowdown: float
    llc_miss_rate: float
    hbm_txn_per_instr: float


def run_gpu_study(extra_latency_ns: float = 35.0,
                  model: A100Model | None = None) -> list[GPUSlowdown]:
    """Slowdown of all 24 GPU applications at one adder (Fig. 9)."""
    model = model if model is not None else A100Model()
    out = []
    for app in gpu_applications():
        out.append(GPUSlowdown(
            name=app.name,
            suite=app.suite,
            extra_latency_ns=extra_latency_ns,
            slowdown=model.slowdown(app, extra_latency_ns),
            llc_miss_rate=app.llc_miss_rate,
            hbm_txn_per_instr=app.hbm_txn_per_instr))
    return out


@dataclass(frozen=True)
class RodiniaComparison:
    """Per-benchmark CPU (both cores) vs GPU slowdown (Fig. 11)."""

    benchmark: str
    inorder: float
    ooo: float
    gpu: float


def cpu_gpu_rodinia_comparison(extra_latency_ns: float = 35.0,
                               simulator: CPUSimulator | None = None,
                               model: A100Model | None = None,
                               ) -> list[RodiniaComparison]:
    """Fig. 11: shared Rodinia benchmarks on in-order, OOO, and GPU."""
    from repro.workloads.cpu_suites import rodinia_cpu_benchmarks

    cpu_results = run_cpu_study(
        extra_latency_ns,
        benchmarks=tuple(b for b in rodinia_cpu_benchmarks()
                         if b.name in RODINIA_INTERSECTION),
        simulator=simulator)
    gpu_results = {g.name.split(".")[-1]: g.slowdown
                   for g in run_gpu_study(extra_latency_ns, model)
                   if g.suite == "rodinia-gpu"}
    by_bench: dict[str, dict[str, float]] = defaultdict(dict)
    for res in cpu_results:
        bench = res.name.split(".")[1]
        by_bench[bench][res.core] = res.slowdown
    out = []
    for bench in RODINIA_INTERSECTION:
        if bench not in by_bench or bench not in gpu_results:
            continue
        out.append(RodiniaComparison(
            benchmark=bench,
            inorder=by_bench[bench]["inorder"],
            ooo=by_bench[bench]["ooo"],
            gpu=gpu_results[bench]))
    return out
