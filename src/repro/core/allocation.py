"""Disaggregated resource allocator.

The operational payoff of disaggregation: jobs request arbitrary
mixes of CPUs, GPUs, memory, and NIC bandwidth, and the rack serves
them from shared pools instead of whole statically-shaped nodes.
:class:`DisaggregatedAllocator` implements that pool accounting, and
is what the scheduler (and the utilization examples) drive. A
node-granular baseline allocator is provided for contrast — it
exhibits the "marooned resources" effect the paper motivates with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.rack.baseline import BaselineRack
from repro.rack.chips import ChipType


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied."""


@dataclass(frozen=True)
class JobRequest:
    """Resource demand of one job.

    Quantities are in natural units: CPU cores-worth of chips, GPUs,
    GB of DDR4, NIC Gbps.
    """

    job_id: str
    cpus: int = 0
    gpus: int = 0
    memory_gbyte: float = 0.0
    nic_gbps: float = 0.0

    def __post_init__(self) -> None:
        if min(self.cpus, self.gpus) < 0:
            raise ValueError(f"{self.job_id}: chip counts must be >= 0")
        if self.memory_gbyte < 0 or self.nic_gbps < 0:
            raise ValueError(f"{self.job_id}: demands must be >= 0")
        if (self.cpus == 0 and self.gpus == 0 and self.memory_gbyte == 0
                and self.nic_gbps == 0):
            raise ValueError(f"{self.job_id}: empty request")


@dataclass
class ResourcePool:
    """One fungible resource pool with simple conservation accounting."""

    name: str
    capacity: float
    used: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"{self.name}: capacity must be >= 0")

    @property
    def free(self) -> float:
        """Unallocated capacity."""
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        """Fraction of capacity allocated."""
        return self.used / self.capacity if self.capacity else 0.0

    def take(self, amount: float) -> None:
        """Allocate ``amount`` or raise :class:`AllocationError`."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.free + 1e-9:
            raise AllocationError(
                f"{self.name}: need {amount}, only {self.free:.3f} free")
        self.used += amount

    def give(self, amount: float) -> None:
        """Return ``amount`` to the pool."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.used + 1e-9:
            raise RuntimeError(f"{self.name}: release underflow")
        self.used = max(0.0, self.used - amount)


@dataclass
class DisaggregatedAllocator:
    """Rack-wide pooled allocator over the disaggregated resources."""

    cpus: ResourcePool
    gpus: ResourcePool
    memory_gbyte: ResourcePool
    nic_gbps: ResourcePool
    _held: dict[str, JobRequest] = field(default_factory=dict, repr=False)

    @classmethod
    def for_rack(cls, rack: BaselineRack | None = None,
                 memory_reduction: float = 1.0,
                 nic_reduction: float = 1.0) -> "DisaggregatedAllocator":
        """Pools matching a baseline rack's totals, optionally shrunk
        by the iso-performance reduction factors."""
        rack = rack if rack is not None else BaselineRack()
        counts = rack.chip_counts()
        node = rack.node
        return cls(
            cpus=ResourcePool("cpus", counts[ChipType.CPU]),
            gpus=ResourcePool("gpus", counts[ChipType.GPU]),
            memory_gbyte=ResourcePool(
                "memory_gbyte",
                rack.memory_capacity_gbyte() / memory_reduction),
            nic_gbps=ResourcePool(
                "nic_gbps",
                counts[ChipType.NIC] * node.nic_gbps / nic_reduction))

    def allocate(self, request: JobRequest) -> None:
        """Atomically allocate a job's full demand (all-or-nothing)."""
        if request.job_id in self._held:
            raise AllocationError(f"{request.job_id}: already allocated")
        taken: list[tuple[ResourcePool, float]] = []
        try:
            for pool, amount in self._demands(request):
                pool.take(amount)
                taken.append((pool, amount))
        except AllocationError:
            for pool, amount in taken:
                pool.give(amount)
            raise
        self._held[request.job_id] = request

    def release(self, job_id: str) -> None:
        """Release a previously allocated job."""
        try:
            request = self._held.pop(job_id)
        except KeyError:
            raise AllocationError(f"{job_id}: not allocated") from None
        for pool, amount in self._demands(request):
            pool.give(amount)

    def can_allocate(self, request: JobRequest) -> bool:
        """Would :meth:`allocate` succeed right now?"""
        return all(pool.free + 1e-9 >= amount
                   for pool, amount in self._demands(request))

    def utilization(self) -> dict[str, float]:
        """Per-pool utilization snapshot."""
        return {pool.name: pool.utilization
                for pool in (self.cpus, self.gpus, self.memory_gbyte,
                             self.nic_gbps)}

    def active_jobs(self) -> tuple[str, ...]:
        """IDs of currently allocated jobs."""
        return tuple(self._held)

    def _demands(self, request: JobRequest
                 ) -> list[tuple[ResourcePool, float]]:
        return [(self.cpus, float(request.cpus)),
                (self.gpus, float(request.gpus)),
                (self.memory_gbyte, request.memory_gbyte),
                (self.nic_gbps, request.nic_gbps)]


@dataclass
class NodeGranularAllocator:
    """Baseline allocator: whole statically-shaped nodes only.

    A job receives ``ceil(max over resources of demand/node capacity)``
    nodes; everything else on those nodes is marooned. Comparing its
    node consumption against the pooled allocator on the same job
    stream quantifies the §I motivation.
    """

    rack: BaselineRack = field(default_factory=BaselineRack)
    nodes_used: int = 0
    _held: dict[str, int] = field(default_factory=dict, repr=False)

    def nodes_for(self, request: JobRequest) -> int:
        """Nodes a request consumes under node-granular allocation."""
        node = self.rack.node
        needs = [
            request.cpus / node.cpus if node.cpus else 0.0,
            request.gpus / node.gpus if node.gpus else 0.0,
            request.memory_gbyte / node.memory_capacity_gbyte,
            request.nic_gbps / (node.nics * node.nic_gbps),
        ]
        return max(1, math.ceil(max(needs)))

    def allocate(self, request: JobRequest) -> int:
        """Allocate whole nodes; returns the node count consumed."""
        if request.job_id in self._held:
            raise AllocationError(f"{request.job_id}: already allocated")
        nodes = self.nodes_for(request)
        if self.nodes_used + nodes > self.rack.n_nodes:
            raise AllocationError(
                f"{request.job_id}: needs {nodes} nodes, "
                f"{self.rack.n_nodes - self.nodes_used} free")
        self.nodes_used += nodes
        self._held[request.job_id] = nodes
        return nodes

    def release(self, job_id: str) -> None:
        """Release a job's nodes."""
        try:
            nodes = self._held.pop(job_id)
        except KeyError:
            raise AllocationError(f"{job_id}: not allocated") from None
        self.nodes_used -= nodes

    def marooned_fraction(self, requests: list[JobRequest]) -> dict[str, float]:
        """Fraction of each resource left idle by node-granular shapes.

        Computed for a hypothetical placement of all ``requests`` (does
        not mutate state).
        """
        node = self.rack.node
        total_nodes = sum(self.nodes_for(r) for r in requests)
        if total_nodes == 0:
            return {"cpus": 0.0, "gpus": 0.0, "memory": 0.0, "nic": 0.0}
        used = {
            "cpus": sum(r.cpus for r in requests),
            "gpus": sum(r.gpus for r in requests),
            "memory": sum(r.memory_gbyte for r in requests),
            "nic": sum(r.nic_gbps for r in requests),
        }
        provided = {
            "cpus": total_nodes * node.cpus,
            "gpus": total_nodes * node.gpus,
            "memory": total_nodes * node.memory_capacity_gbyte,
            "nic": total_nodes * node.nics * node.nic_gbps,
        }
        return {k: 1.0 - used[k] / provided[k] for k in used}
