"""Job placement onto MCMs and bandwidth validation.

Closes the loop between the resource allocator and the photonic
fabric: a job that was granted CPUs/GPUs/memory/NIC capacity must be
*placed* on concrete MCMs (Table III's 350 modules), and the resulting
chip-to-chip traffic must fit the fabric's wavelength capacity. The
§VI-A analysis argues this statistically; the placement engine lets us
check it empirically for any workload: place jobs first-fit, derive
the CPU<->DDR4 / GPU<->HBM / CPU<->NIC flow set, and offer it to the
:class:`~repro.network.simulator.AWGRNetworkSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import JobRequest
from repro.network.simulator import AWGRNetworkSimulator, SimulationReport
from repro.network.traffic import Flow
from repro.rack.chips import ChipType
from repro.rack.mcm import MCMPacking, pack_rack


@dataclass
class MCMDirectory:
    """Enumeration of the rack's MCMs with chip-slot accounting.

    MCM ids are global (0..n_mcms-1), grouped contiguously by type in
    Table III order. ``free[mcm_id]`` tracks unassigned chip slots.
    """

    packings: dict[ChipType, MCMPacking]
    ids: dict[ChipType, range] = field(init=False)
    slots: dict[int, int] = field(init=False)
    free: dict[int, int] = field(init=False)

    def __post_init__(self) -> None:
        self.ids = {}
        self.slots = {}
        next_id = 0
        for chip_type in (ChipType.CPU, ChipType.GPU, ChipType.NIC,
                          ChipType.HBM, ChipType.DDR4):
            packing = self.packings[chip_type]
            self.ids[chip_type] = range(next_id, next_id + packing.mcms)
            for mcm in self.ids[chip_type]:
                self.slots[mcm] = packing.chips_per_mcm
            next_id += packing.mcms
        self.free = dict(self.slots)

    @classmethod
    def for_default_rack(cls) -> "MCMDirectory":
        """Directory for the paper's 350-MCM rack."""
        return cls(pack_rack())

    @property
    def n_mcms(self) -> int:
        """Total MCMs in the directory."""
        return len(self.slots)

    def take_chips(self, chip_type: ChipType, count: int
                   ) -> dict[int, int]:
        """First-fit allocation of ``count`` chips of one type.

        Returns {mcm_id: chips} and decrements the free counters.
        Raises ``RuntimeError`` when the type's MCMs are exhausted.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        taken: dict[int, int] = {}
        remaining = count
        for mcm in self.ids[chip_type]:
            if remaining == 0:
                break
            grab = min(self.free[mcm], remaining)
            if grab > 0:
                self.free[mcm] -= grab
                taken[mcm] = grab
                remaining -= grab
        if remaining > 0:
            for mcm, grab in taken.items():
                self.free[mcm] += grab
            raise RuntimeError(
                f"out of {chip_type.value} capacity: short {remaining}")
        return taken

    def release_chips(self, assignment: dict[int, int]) -> None:
        """Return previously taken chips."""
        for mcm, count in assignment.items():
            self.free[mcm] += count
            if self.free[mcm] > self.slots[mcm]:
                raise RuntimeError(f"MCM {mcm} over-released")


@dataclass(frozen=True)
class JobPlacement:
    """Where one job's chips landed."""

    job_id: str
    cpus: dict[int, int]
    gpus: dict[int, int]
    ddr4: dict[int, int]
    nics: dict[int, int]
    hbm: dict[int, int]

    def mcms_touched(self) -> set[int]:
        """All MCMs this job occupies."""
        out: set[int] = set()
        for group in (self.cpus, self.gpus, self.ddr4, self.nics,
                      self.hbm):
            out.update(group)
        return out


@dataclass
class PlacementEngine:
    """Places allocated jobs on MCMs and derives their traffic.

    Parameters
    ----------
    directory:
        MCM inventory (defaults to the paper's rack).
    ddr4_gbyte_per_module:
        Capacity per DDR4 module for converting GB demands to modules.
    """

    directory: MCMDirectory = field(
        default_factory=MCMDirectory.for_default_rack)
    ddr4_gbyte_per_module: float = 32.0
    placements: dict[str, JobPlacement] = field(default_factory=dict)

    def place(self, request: JobRequest) -> JobPlacement:
        """Place one job first-fit; all-or-nothing."""
        if request.job_id in self.placements:
            raise RuntimeError(f"{request.job_id} already placed")
        taken: list[dict[int, int]] = []
        try:
            cpus = (self.directory.take_chips(ChipType.CPU, request.cpus)
                    if request.cpus else {})
            taken.append(cpus)
            gpus = (self.directory.take_chips(ChipType.GPU, request.gpus)
                    if request.gpus else {})
            taken.append(gpus)
            modules = int(np.ceil(request.memory_gbyte
                                  / self.ddr4_gbyte_per_module))
            ddr4 = (self.directory.take_chips(ChipType.DDR4, modules)
                    if modules else {})
            taken.append(ddr4)
            nic_count = max(1, int(np.ceil(request.nic_gbps / 200.0))) \
                if request.nic_gbps > 0 else 0
            nics = (self.directory.take_chips(ChipType.NIC, nic_count)
                    if nic_count else {})
            taken.append(nics)
            hbm = (self.directory.take_chips(ChipType.HBM, request.gpus)
                   if request.gpus else {})
            taken.append(hbm)
        except RuntimeError:
            for group in taken:
                self.directory.release_chips(group)
            raise
        placement = JobPlacement(job_id=request.job_id, cpus=cpus,
                                 gpus=gpus, ddr4=ddr4, nics=nics,
                                 hbm=hbm)
        self.placements[request.job_id] = placement
        return placement

    def unplace(self, job_id: str) -> None:
        """Release a job's chips."""
        try:
            placement = self.placements.pop(job_id)
        except KeyError:
            raise RuntimeError(f"{job_id} not placed") from None
        for group in (placement.cpus, placement.gpus, placement.ddr4,
                      placement.nics, placement.hbm):
            if group:
                self.directory.release_chips(group)

    # -- traffic derivation ------------------------------------------------------

    def flows_for(self, placement: JobPlacement,
                  mem_gbps_per_cpu: float = 25.0,
                  hbm_gbyte_s_per_gpu: float = 1555.2,
                  nic_gbps_per_link: float = 25.0) -> list[Flow]:
        """Derive the placement's steady inter-MCM flow set.

        CPU MCMs stream to the job's DDR4 MCMs (demand split evenly),
        GPU MCMs stream to their HBM MCMs at native bandwidth, and CPU
        MCMs exchange with NIC MCMs. Intra-MCM traffic (same module)
        generates no fabric flow.
        """
        flows: list[Flow] = []
        cpu_mcms = list(placement.cpus)
        ddr_mcms = list(placement.ddr4)
        nic_mcms = list(placement.nics)
        gpu_mcms = list(placement.gpus)
        hbm_mcms = list(placement.hbm)

        if cpu_mcms and ddr_mcms:
            per_pair = mem_gbps_per_cpu / len(ddr_mcms)
            for cpu in cpu_mcms:
                for ddr in ddr_mcms:
                    if cpu != ddr and per_pair > 0:
                        flows.append(Flow(cpu, ddr,
                                          max(per_pair, 0.01),
                                          kind="cpu-mem"))
        if cpu_mcms and nic_mcms:
            for cpu in cpu_mcms:
                for nic in nic_mcms:
                    if cpu != nic:
                        flows.append(Flow(cpu, nic, nic_gbps_per_link,
                                          kind="cpu-nic"))
        if gpu_mcms and hbm_mcms:
            # Each GPU MCM streams to the job's HBM MCMs proportionally
            # to the *stacks hosted there*: an HBM MCM's inflow is then
            # bounded by its hosted stacks' native bandwidth, matching
            # the physical pairing of GPUs with their HBM.
            total_stacks = sum(placement.hbm.values())
            for gpu_mcm, n_gpus in placement.gpus.items():
                gpu_gbps = n_gpus * hbm_gbyte_s_per_gpu * 8.0
                for hbm, stacks in placement.hbm.items():
                    share = gpu_gbps * stacks / total_stacks
                    if gpu_mcm != hbm and share > 0:
                        flows.append(Flow(gpu_mcm, hbm, share,
                                          kind="gpu-hbm"))
        return flows

    def validate_bandwidth(self, jobs: list[JobRequest],
                           planes: int = 6,
                           flows_per_wavelength: int = 64,
                           gbps_per_wavelength: float = 25.0,
                           ) -> tuple[SimulationReport, list[Flow]]:
        """Place a job set and offer its flows to the AWGR fabric.

        Large GPU-HBM flows are striped into wavelength-sized pieces
        before admission (as a real transport would), then carried
        through direct + indirect wavelengths. Returns the simulator's
        report plus the derived flow list.

        ``planes`` defaults to 6: the design's five full AWGR planes
        plus the partial sixth (approximated as full, 52.5 vs the true
        ~51 Tbps per-MCM escape). With only five planes, an HBM MCM's
        fabric in-capacity (43.75 Tbps) falls short of its four stacks'
        native 49.8 Tbps — the quantitative reason the paper's design
        carries the leftover wavelengths into a sixth AWGR.
        """
        all_flows: list[Flow] = []
        placed: list[str] = []
        try:
            for request in jobs:
                placement = self.place(request)
                placed.append(request.job_id)
                all_flows.extend(self.flows_for(placement))
        finally:
            for job_id in placed:
                self.unplace(job_id)

        sim = AWGRNetworkSimulator(
            n_nodes=self.directory.n_mcms, planes=planes,
            flows_per_wavelength=flows_per_wavelength,
            gbps_per_wavelength=gbps_per_wavelength,
            track_state=False)  # rack-scale: perfect-info feasibility
        striped: list[Flow] = []
        for flow in all_flows:
            remaining = flow.gbps
            while remaining > 0:
                piece = min(remaining, gbps_per_wavelength)
                striped.append(Flow(flow.src, flow.dst, piece,
                                    kind=flow.kind))
                remaining -= piece
        report = sim.run([striped], duration_slots=1)
        return report, all_flows
