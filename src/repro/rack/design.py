"""Disaggregated rack design: fabric planning (paper §V-B, Fig. 5).

Two fabric plans are modeled:

* **Case (A), AWGRs** — six parallel 370-port cascaded AWGRs. Each
  MCM's 32 fibers are combined into five groups of six fibers (each
  group driving one port of AWGRs 0-4 with up to 370 of its 384
  wavelengths) plus a sixth port carrying the leftover wavelengths.
  Because an N-port AWGR gives every port pair exactly one wavelength,
  an MCM pair that shares k AWGRs has k direct wavelengths; the plan
  guarantees at least five (125 Gbps at 25 Gbps/wavelength).

* **Case (B), wave-selective/spatial** — eleven 256-port switches with
  MCM i attached to switch I at port p when ``(32*I + p) mod 350 == i``.
  Each MCM lands on ~8 switches and every MCM pair shares at least
  three, giving at least three direct configurable paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.photonics.awgr import CascadedAWGR
from repro.rack.mcm import MCMConfig, pack_rack, total_mcms


@dataclass(frozen=True)
class AWGRFabricPlan:
    """Connectivity plan for the parallel-AWGR fabric (case A).

    Attributes
    ----------
    n_mcms:
        MCMs to connect (350 for the default rack).
    awgr:
        The AWGR device every plane uses.
    full_planes:
        Number of planes on which every MCM has a full-rate port.
    extra_planes:
        Planes carrying leftover wavelengths (partial reach).
    port_assignment:
        (n_mcms, planes) array: ``port_assignment[m, a]`` is MCM m's
        port index on AWGR plane a (or -1 when not attached).
    wavelengths_on_extra:
        Escape wavelengths each MCM drives into each extra plane.
    """

    n_mcms: int
    awgr: CascadedAWGR
    full_planes: int
    extra_planes: int
    port_assignment: np.ndarray
    wavelengths_on_extra: int

    @property
    def planes(self) -> int:
        """Total AWGR planes (6 for the paper's design)."""
        return self.full_planes + self.extra_planes

    def direct_wavelengths(self, src: int, dst: int) -> int:
        """Direct (single-hop) wavelengths between an MCM pair.

        One wavelength per shared plane; a full plane always routes
        between any two attached ports, while an extra plane only
        carries ``wavelengths_on_extra`` of the port's wavelengths and
        can therefore reach only that many distinct destinations — we
        count it when the pair's AWGR wavelength index falls within the
        driven subset.
        """
        self._check_mcm(src)
        self._check_mcm(dst)
        if src == dst:
            return 0
        count = 0
        device = self.awgr.as_awgr()
        for plane in range(self.planes):
            sp = int(self.port_assignment[src, plane])
            dp = int(self.port_assignment[dst, plane])
            if sp < 0 or dp < 0:
                continue
            if plane < self.full_planes:
                count += 1
            else:
                # Extra plane: the source only powers the first
                # `wavelengths_on_extra` of its 370 wavelengths.
                if device.wavelength_for(sp, dp) < self.wavelengths_on_extra:
                    count += 1
        return count

    def min_direct_wavelengths(self) -> int:
        """Minimum direct wavelengths over all MCM pairs (>= 5)."""
        # Full planes alone give `full_planes` wavelengths to every
        # pair, so the minimum is at least that; scan only extra planes.
        best_floor = self.full_planes
        worst_extra = self.extra_planes
        if self.extra_planes:
            device = self.awgr.as_awgr()
            for src, dst in itertools.combinations(range(self.n_mcms), 2):
                extra = 0
                for plane in range(self.full_planes, self.planes):
                    sp = int(self.port_assignment[src, plane])
                    dp = int(self.port_assignment[dst, plane])
                    if sp < 0 or dp < 0:
                        continue
                    if device.wavelength_for(sp, dp) < self.wavelengths_on_extra:
                        extra += 1
                worst_extra = min(worst_extra, extra)
                if worst_extra == 0:
                    break
        return best_floor + worst_extra

    def direct_bandwidth_gbps(self, src: int, dst: int) -> float:
        """Direct pair bandwidth in Gbps."""
        return (self.direct_wavelengths(src, dst)
                * self.awgr.gbps_per_wavelength)

    def guaranteed_pair_gbps(self) -> float:
        """Bandwidth every pair is guaranteed without indirection (125)."""
        return self.full_planes * self.awgr.gbps_per_wavelength

    def _check_mcm(self, m: int) -> None:
        if not 0 <= m < self.n_mcms:
            raise ValueError(f"MCM index {m} out of range [0, {self.n_mcms})")


def plan_awgr_fabric(n_mcms: int | None = None,
                     mcm: MCMConfig | None = None,
                     awgr: CascadedAWGR | None = None,
                     full_planes: int = 5,
                     fibers_per_group: int = 6) -> AWGRFabricPlan:
    """Build the paper's six-plane AWGR plan (§V-B).

    Each MCM combines its fibers into ``full_planes`` groups of
    ``fibers_per_group`` fibers. A group carries
    ``fibers_per_group * wavelengths_per_fiber`` wavelengths (384) of
    which at most the AWGR's 370 are used; leftovers plus the remaining
    whole fibers feed one extra plane. Ports are assigned in a staggered
    (rotated) pattern so consecutive MCMs do not collide on extra-plane
    wavelength subsets.
    """
    mcm = mcm if mcm is not None else MCMConfig()
    if n_mcms is None:
        n_mcms = total_mcms(pack_rack(mcm=mcm))
    awgr = awgr if awgr is not None else CascadedAWGR.paper_config()
    if n_mcms > awgr.ports:
        raise ValueError(f"{n_mcms} MCMs exceed AWGR radix {awgr.ports}")
    if full_planes * fibers_per_group > mcm.fibers:
        raise ValueError("fiber grouping exceeds fibers per MCM")

    per_group = fibers_per_group * mcm.wavelengths_per_fiber
    used_per_group = min(per_group, awgr.ports)
    leftover_per_group = per_group - used_per_group
    spare_fibers = mcm.fibers - full_planes * fibers_per_group
    extra_wavelengths = (spare_fibers * mcm.wavelengths_per_fiber
                         + leftover_per_group)
    extra_planes = 1 if extra_wavelengths > 0 else 0

    planes = full_planes + extra_planes
    assignment = np.full((n_mcms, planes), -1, dtype=int)
    for plane in range(planes):
        # Staggered port assignment: rotate by a plane-dependent offset
        # so that extra-plane reachability subsets differ across planes.
        offset = (plane * 31) % awgr.ports
        for m in range(n_mcms):
            assignment[m, plane] = (m + offset) % awgr.ports

    return AWGRFabricPlan(
        n_mcms=n_mcms,
        awgr=awgr,
        full_planes=full_planes,
        extra_planes=extra_planes,
        port_assignment=assignment,
        wavelengths_on_extra=min(extra_wavelengths, awgr.ports),
    )


@dataclass(frozen=True)
class WSSFabricPlan:
    """Connectivity plan for the wave-selective/spatial fabric (case B).

    Attributes
    ----------
    n_mcms:
        MCMs to connect.
    n_switches:
        Parallel switches (11 for the paper's design).
    radix:
        Ports per switch (256).
    wavelengths_per_port:
        Wavelengths each port carries (256).
    gbps_per_wavelength:
        Line rate (25).
    attachment:
        (n_switches, radix) array of attached MCM index (or -1).
    """

    n_mcms: int
    n_switches: int
    radix: int
    wavelengths_per_port: int
    gbps_per_wavelength: float
    attachment: np.ndarray
    _mcm_switches: dict[int, frozenset[int]] = field(repr=False, default=None)

    def __post_init__(self) -> None:
        lookup: dict[int, set[int]] = {m: set() for m in range(self.n_mcms)}
        for s in range(self.n_switches):
            for mcm in self.attachment[s]:
                if mcm >= 0:
                    lookup[int(mcm)].add(s)
        frozen = {m: frozenset(v) for m, v in lookup.items()}
        object.__setattr__(self, "_mcm_switches", frozen)

    def switches_of(self, mcm: int) -> frozenset[int]:
        """Switches MCM ``mcm`` attaches to."""
        return self._mcm_switches[mcm]

    def common_switches(self, src: int, dst: int) -> frozenset[int]:
        """Switches connecting an MCM pair directly."""
        return self.switches_of(src) & self.switches_of(dst)

    def direct_paths(self, src: int, dst: int) -> int:
        """Number of direct switch paths between a pair."""
        if src == dst:
            return 0
        return len(self.common_switches(src, dst))

    def min_direct_paths(self) -> int:
        """Minimum direct paths across all MCM pairs (>= 3)."""
        return min(self.direct_paths(a, b)
                   for a, b in itertools.combinations(range(self.n_mcms), 2))

    def ports_per_mcm(self) -> np.ndarray:
        """Number of switch ports each MCM consumes (~8)."""
        counts = np.zeros(self.n_mcms, dtype=int)
        for s in range(self.n_switches):
            for mcm in self.attachment[s]:
                if mcm >= 0:
                    counts[int(mcm)] += 1
        return counts

    def direct_bandwidth_gbps(self, src: int, dst: int) -> float:
        """Reconfigured direct bandwidth: full port rate per shared switch."""
        return (self.direct_paths(src, dst) * self.wavelengths_per_port
                * self.gbps_per_wavelength)


def plan_wss_fabric(n_mcms: int | None = None,
                    mcm: MCMConfig | None = None,
                    n_switches: int = 11,
                    radix: int = 256,
                    wavelengths_per_port: int = 256,
                    gbps_per_wavelength: float = 25.0,
                    stride: int = 32) -> WSSFabricPlan:
    """Build the paper's eleven-switch staggered plan (§V-B).

    Switch ``I`` port ``p`` attaches MCM ``(stride*I + p) mod n_mcms``,
    the paper's staggering with ``stride = 32``, except that a switch
    skips an MCM that already holds ``ceil(wavelengths/λ-per-port)``
    attachments (the 32-fiber budget, 8 ports for the defaults); such
    ports are left free for future rack growth.
    """
    mcm = mcm if mcm is not None else MCMConfig()
    if n_mcms is None:
        n_mcms = total_mcms(pack_rack(mcm=mcm))
    max_ports = mcm.wavelengths // wavelengths_per_port
    if max_ports < 1:
        raise ValueError("MCM wavelength budget below one switch port")

    attachment = np.full((n_switches, radix), -1, dtype=int)
    port_budget = np.full(n_mcms, max_ports, dtype=int)
    for switch in range(n_switches):
        for port in range(radix):
            candidate = (stride * switch + port) % n_mcms
            if port_budget[candidate] > 0:
                attachment[switch, port] = candidate
                port_budget[candidate] -= 1
    return WSSFabricPlan(
        n_mcms=n_mcms,
        n_switches=n_switches,
        radix=radix,
        wavelengths_per_port=wavelengths_per_port,
        gbps_per_wavelength=gbps_per_wavelength,
        attachment=attachment,
    )


@dataclass(frozen=True)
class DisaggregatedRack:
    """The full disaggregated rack: MCM packing plus a fabric plan."""

    mcm: MCMConfig = field(default_factory=MCMConfig)
    fabric: str = "awgr"

    def __post_init__(self) -> None:
        if self.fabric not in ("awgr", "wss"):
            raise ValueError("fabric must be 'awgr' or 'wss'")

    def packings(self):
        """Table III packing for this MCM configuration."""
        return pack_rack(mcm=self.mcm)

    def n_mcms(self) -> int:
        """Total MCMs (350 by default)."""
        return total_mcms(self.packings())

    def plan(self):
        """Fabric plan matching :attr:`fabric`."""
        if self.fabric == "awgr":
            return plan_awgr_fabric(n_mcms=self.n_mcms(), mcm=self.mcm)
        return plan_wss_fabric(n_mcms=self.n_mcms(), mcm=self.mcm)
