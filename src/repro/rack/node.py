"""Baseline compute node model (paper §V).

The model node follows a GPU-accelerated HPE/Cray EX (Perlmutter GPU)
node: one AMD Milan CPU with eight DDR4-3200 modules (256 GB,
204.8 GB/s), four NVIDIA A100 GPUs each with 40 GB of HBM
(1555.2 GB/s) and 12 NVLink-3 links, four PCIe Gen4 CPU-GPU links, and
four Slingshot-11 NICs at 200 Gbps per direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rack.chips import CHIP_CATALOG, ChipType


@dataclass(frozen=True)
class NodeConfig:
    """Composition of one baseline node.

    The counts are per node; bandwidths live in the chip catalog.
    ``nics_counted`` lets the iso-performance module accounting of
    §VI-E (which counts two NICs per node — see EXPERIMENTS.md) differ
    from the physical four without changing the physical model.
    """

    name: str = "perlmutter-gpu-node"
    cpus: int = 1
    gpus: int = 4
    nics: int = 4
    ddr4_modules: int = 8
    hbm_stacks: int = 4         # one per GPU
    nvlink_per_gpu: int = 12
    nvlink_gbyte_s: float = 25.0
    pcie_links: int = 4
    pcie_gbyte_s: float = 31.5
    nic_gbps: float = 200.0

    def __post_init__(self) -> None:
        for attr in ("cpus", "gpus", "nics", "ddr4_modules", "hbm_stacks"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")

    # -- chip counting -------------------------------------------------------

    def chip_counts(self) -> dict[ChipType, int]:
        """Physical chips of each type in one node."""
        return {
            ChipType.CPU: self.cpus,
            ChipType.GPU: self.gpus,
            ChipType.NIC: self.nics,
            ChipType.HBM: self.hbm_stacks,
            ChipType.DDR4: self.ddr4_modules,
        }

    # -- derived bandwidths ---------------------------------------------------

    @property
    def memory_capacity_gbyte(self) -> float:
        """CPU-attached DDR4 capacity."""
        return self.ddr4_modules * CHIP_CATALOG[ChipType.DDR4].capacity_gbyte

    @property
    def memory_bandwidth_gbyte_s(self) -> float:
        """Peak CPU memory bandwidth."""
        return self.ddr4_modules * CHIP_CATALOG[ChipType.DDR4].escape_gbyte_s

    @property
    def hbm_bandwidth_gbyte_s(self) -> float:
        """Peak aggregate HBM bandwidth across GPUs."""
        return self.hbm_stacks * CHIP_CATALOG[ChipType.HBM].escape_gbyte_s

    @property
    def gpu_interconnect_gbyte_s(self) -> float:
        """Aggregate NVLink bandwidth leaving all GPUs of the node."""
        return self.gpus * self.nvlink_per_gpu * self.nvlink_gbyte_s

    @property
    def nic_bandwidth_gbyte_s(self) -> float:
        """Aggregate injection bandwidth of the node's NICs."""
        return self.nics * self.nic_gbps / 8.0

    def power_w(self) -> float:
        """Node power from the catalog chip powers."""
        return sum(CHIP_CATALOG[t].power_w * n
                   for t, n in self.chip_counts().items())


#: The study's model node.
PERLMUTTER_NODE = NodeConfig()
