"""Chip catalog for the model rack (paper §V).

Each :class:`ChipSpec` captures the properties of one chip type in the
model HPE/Cray EX node that matter for disaggregation: its escape
bandwidth (what the photonic MCM must provide so disaggregation never
throttles the chip), its power (for the §VI-C overhead ratio), and its
capacity where applicable.

Escape-bandwidth derivations (GB/s, per chip, from §V):

* **CPU** (AMD Milan): 8 memory controllers x DDR4-3200 = 204.8 memory
  + 4 PCIe Gen4 x16 to GPUs = 4 x 31.5 = 126
  + 4 Slingshot-11 NICs x 200 Gbps = 4 x 25 = 100  => 430.8
* **GPU** (NVIDIA A100): HBM 1555.2 + 12 NVLink3 x 25 = 300
  + PCIe Gen4 31.5 => 1886.7
* **NIC** (Slingshot 11): attaches over PCIe Gen4 x16 => 31.5
* **HBM** stack (per GPU): 1555.2
* **DDR4-3200 module**: 25.6
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ChipType(Enum):
    """The five disaggregatable chip types of Table III."""

    CPU = "cpu"
    GPU = "gpu"
    NIC = "nic"
    HBM = "hbm"
    DDR4 = "ddr4"


@dataclass(frozen=True)
class ChipSpec:
    """Static description of one chip type.

    Parameters
    ----------
    chip_type:
        Which of the five types this is.
    escape_gbyte_s:
        Total off-chip bandwidth the chip can drive (GB/s); the MCM
        packing guarantees at least this per chip.
    power_w:
        Typical board power, used in the §VI-C overhead calculation.
        Memory module power is apportioned from the paper's "512 GB of
        DDR4 ... approximately 192 W" per node figure.
    capacity_gbyte:
        Memory capacity for memory chips; 0 otherwise.
    mcm_chip_limit:
        Optional packaging cap on chips of this type per MCM. ``None``
        means escape bandwidth alone decides. Table III's DDR4 row (27
        modules/MCM) reflects a packaging/controller limit rather than
        pure bandwidth division (which would allow 250 modules); we
        encode that explicitly and document it in EXPERIMENTS.md.
    """

    chip_type: ChipType
    escape_gbyte_s: float
    power_w: float
    capacity_gbyte: float = 0.0
    mcm_chip_limit: int | None = None

    def __post_init__(self) -> None:
        if self.escape_gbyte_s <= 0:
            raise ValueError(f"{self.chip_type}: escape bandwidth must be > 0")
        if self.power_w < 0:
            raise ValueError(f"{self.chip_type}: power must be >= 0")
        if self.capacity_gbyte < 0:
            raise ValueError(f"{self.chip_type}: capacity must be >= 0")
        if self.mcm_chip_limit is not None and self.mcm_chip_limit <= 0:
            raise ValueError(f"{self.chip_type}: chip limit must be positive")

    @property
    def escape_gbps(self) -> float:
        """Escape bandwidth in Gbps."""
        return self.escape_gbyte_s * 8.0


# Derived constants kept explicit so tests can assert the arithmetic.
MILAN_MEMORY_GBYTE_S = 8 * 25.6          # 8 controllers x DDR4-3200
MILAN_PCIE_GBYTE_S = 4 * 31.5            # 4 PCIe Gen4 x16 links to GPUs
MILAN_NIC_GBYTE_S = 4 * 25.0             # 4 Slingshot-11 @ 200 Gbps
A100_HBM_GBYTE_S = 1555.2
A100_NVLINK_GBYTE_S = 12 * 25.0          # 12 NVLink3 @ 25 GB/s/dir
A100_PCIE_GBYTE_S = 31.5

#: Per-node DDR4 power from the paper (512 GB -> 192 W) apportioned to
#: the 8 modules of our 256 GB node: 192 W x (256/512) / 8 = 12 W/module.
DDR4_MODULE_POWER_W = 192.0 * (256.0 / 512.0) / 8.0

CHIP_CATALOG: dict[ChipType, ChipSpec] = {
    ChipType.CPU: ChipSpec(
        ChipType.CPU,
        escape_gbyte_s=MILAN_MEMORY_GBYTE_S + MILAN_PCIE_GBYTE_S + MILAN_NIC_GBYTE_S,
        power_w=250.0),
    ChipType.GPU: ChipSpec(
        ChipType.GPU,
        escape_gbyte_s=A100_HBM_GBYTE_S + A100_NVLINK_GBYTE_S + A100_PCIE_GBYTE_S,
        power_w=300.0,
        capacity_gbyte=40.0),
    ChipType.NIC: ChipSpec(
        ChipType.NIC,
        escape_gbyte_s=A100_PCIE_GBYTE_S,  # NIC attaches over PCIe Gen4 x16
        power_w=25.0),
    ChipType.HBM: ChipSpec(
        ChipType.HBM,
        escape_gbyte_s=A100_HBM_GBYTE_S,
        power_w=25.0,
        capacity_gbyte=40.0),
    ChipType.DDR4: ChipSpec(
        ChipType.DDR4,
        escape_gbyte_s=25.6,
        power_w=DDR4_MODULE_POWER_W,
        capacity_gbyte=32.0,
        mcm_chip_limit=27),
}


def chip_by_type(chip_type: ChipType) -> ChipSpec:
    """Catalog lookup (KeyError if the type is unknown)."""
    return CHIP_CATALOG[chip_type]
