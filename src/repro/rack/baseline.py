"""Non-disaggregated baseline rack (paper §V / §VI-E).

A rack contains 128 identical nodes. Resources are marooned inside
nodes: a job that needs extra memory on one node cannot borrow idle
memory from a neighbor. The baseline's chip counts and power anchor
both the §VI-C power-overhead ratio and the §VI-E iso-performance
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rack.chips import CHIP_CATALOG, ChipType
from repro.rack.node import PERLMUTTER_NODE, NodeConfig


@dataclass(frozen=True)
class BaselineRack:
    """A rack of identical, statically configured nodes.

    Parameters
    ----------
    node:
        Per-node composition.
    n_nodes:
        Nodes per rack (128 for the model HPE/Cray EX rack).
    """

    node: NodeConfig = field(default_factory=lambda: PERLMUTTER_NODE)
    n_nodes: int = 128

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")

    def chip_counts(self) -> dict[ChipType, int]:
        """Total chips of each type in the rack."""
        return {t: n * self.n_nodes for t, n in self.node.chip_counts().items()}

    def total_chips(self) -> int:
        """All chips in the rack."""
        return sum(self.chip_counts().values())

    def module_counts(self, nics_counted_per_node: int | None = None,
                      count_hbm: bool = False) -> dict[ChipType, int]:
        """Module counts under the §VI-E accounting.

        The iso-performance comparison counts modules per node as
        1 CPU + 4 GPUs (HBM folded into the GPU) + 8 DDR4 + 2 NICs,
        giving the paper's 1920 baseline modules. ``nics_counted_per_node``
        and ``count_hbm`` expose those accounting choices.
        """
        nics = (2 if nics_counted_per_node is None else nics_counted_per_node)
        counts = {
            ChipType.CPU: self.node.cpus * self.n_nodes,
            ChipType.GPU: self.node.gpus * self.n_nodes,
            ChipType.NIC: nics * self.n_nodes,
            ChipType.DDR4: self.node.ddr4_modules * self.n_nodes,
        }
        if count_hbm:
            counts[ChipType.HBM] = self.node.hbm_stacks * self.n_nodes
        return counts

    def total_modules(self, **kwargs) -> int:
        """Total modules under the §VI-E accounting (1920 by default)."""
        return sum(self.module_counts(**kwargs).values())

    def compute_power_w(self) -> float:
        """Rack compute power (CPUs + GPUs + DDR4; HBM/NIC folded in).

        Matches the paper's §VI-C accounting: "an A100 GPU is
        approximately 300 W, an AMD Milan CPU 250 W, and 512 GB of DDR4
        memory in a single node approximately 192 W". The paper's node
        carries 256 GB, so we charge DDR4 from the per-module catalog
        power derived from that figure.
        """
        node = self.node
        per_node = (node.cpus * CHIP_CATALOG[ChipType.CPU].power_w
                    + node.gpus * CHIP_CATALOG[ChipType.GPU].power_w
                    + node.ddr4_modules * CHIP_CATALOG[ChipType.DDR4].power_w)
        return per_node * self.n_nodes

    def memory_capacity_gbyte(self) -> float:
        """Total DDR4 capacity of the rack."""
        return self.node.memory_capacity_gbyte * self.n_nodes
