"""Rack-design substrate: chips, nodes, MCM packing, rack topologies.

Models the paper's §V: a baseline GPU-accelerated HPE/Cray EX rack
(128 nodes of 1x AMD Milan + 4x NVIDIA A100) and the photonically
disaggregated redesign that packs same-type chips into MCMs with equal
escape bandwidth (Table III) and connects them with parallel AWGRs or
wave-selective switches (Fig. 5).
"""

from repro.rack.chips import (
    ChipSpec,
    ChipType,
    CHIP_CATALOG,
    chip_by_type,
)
from repro.rack.node import NodeConfig, PERLMUTTER_NODE
from repro.rack.baseline import BaselineRack
from repro.rack.mcm import MCMConfig, MCMPacking, pack_rack, table3_rows
from repro.rack.design import (
    DisaggregatedRack,
    AWGRFabricPlan,
    WSSFabricPlan,
    plan_awgr_fabric,
    plan_wss_fabric,
)

__all__ = [
    "ChipSpec", "ChipType", "CHIP_CATALOG", "chip_by_type",
    "NodeConfig", "PERLMUTTER_NODE", "BaselineRack",
    "MCMConfig", "MCMPacking", "pack_rack", "table3_rows",
    "DisaggregatedRack", "AWGRFabricPlan", "WSSFabricPlan",
    "plan_awgr_fabric", "plan_wss_fabric",
]
