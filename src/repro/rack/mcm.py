"""MCM packing and escape-bandwidth accounting (paper §V-A, Table III).

The disaggregated rack groups chips of a single type onto multi-chip
modules (MCMs). Every MCM has identical photonic escape bandwidth —
32 fibers x 64 wavelengths x 25 Gbps = 51,200 Gbps = 6,400 GB/s — and
the number of chips per MCM is chosen so that each chip keeps at least
the escape bandwidth it enjoyed in the baseline node ("our photonic
architecture does not restrict chip escape bandwidth").

``chips_per_mcm = floor(mcm_escape / chip_escape)`` except where a
packaging limit applies (see :class:`~repro.rack.chips.ChipSpec`), and
``mcms = ceil(rack_chip_count / chips_per_mcm)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.rack.baseline import BaselineRack
from repro.rack.chips import CHIP_CATALOG, ChipSpec, ChipType


@dataclass(frozen=True)
class MCMConfig:
    """Photonic escape configuration common to every MCM (§V-A).

    Defaults are the paper's conservative assumptions: 32 attached
    fibers (vs. the 120 demonstrated in [110]), 64 wavelengths per
    fiber at 25 Gbps each.
    """

    fibers: int = 32
    wavelengths_per_fiber: int = 64
    gbps_per_wavelength: float = 25.0

    def __post_init__(self) -> None:
        if self.fibers <= 0 or self.wavelengths_per_fiber <= 0:
            raise ValueError("fibers and wavelengths must be positive")
        if self.gbps_per_wavelength <= 0:
            raise ValueError("gbps_per_wavelength must be positive")

    @property
    def wavelengths(self) -> int:
        """Total escape wavelengths per MCM (2048 by default)."""
        return self.fibers * self.wavelengths_per_fiber

    @property
    def escape_gbps(self) -> float:
        """Escape bandwidth per MCM in Gbps (51,200 by default)."""
        return self.wavelengths * self.gbps_per_wavelength

    @property
    def escape_gbyte_s(self) -> float:
        """Escape bandwidth per MCM in GB/s (6,400 by default)."""
        return self.escape_gbps / 8.0


def chips_per_mcm(spec: ChipSpec, mcm: MCMConfig) -> int:
    """Chips of one type per MCM under equal-escape-bandwidth packing.

    Bandwidth division sets the count; an explicit packaging limit
    (``spec.mcm_chip_limit``) caps it where the paper's Table III does.
    """
    by_bandwidth = math.floor(mcm.escape_gbyte_s / spec.escape_gbyte_s)
    if by_bandwidth < 1:
        raise ValueError(
            f"{spec.chip_type}: chip escape {spec.escape_gbyte_s} GB/s exceeds "
            f"MCM escape {mcm.escape_gbyte_s} GB/s; no valid packing")
    if spec.mcm_chip_limit is not None:
        return min(by_bandwidth, spec.mcm_chip_limit)
    return by_bandwidth


@dataclass(frozen=True)
class MCMPacking:
    """The packing result for one chip type."""

    chip_type: ChipType
    chips_per_mcm: int
    rack_chips: int
    mcms: int

    @property
    def provisioned_chips(self) -> int:
        """Chip slots provided (>= rack_chips because of ceil)."""
        return self.chips_per_mcm * self.mcms


def pack_rack(rack: BaselineRack | None = None,
              mcm: MCMConfig | None = None) -> dict[ChipType, MCMPacking]:
    """Pack every chip type of a baseline rack into MCMs (Table III).

    Returns a mapping from chip type to its :class:`MCMPacking`. With
    the default rack and MCM configuration this reproduces Table III:
    CPU 14/10, GPU 3/171, NIC 203/3, HBM 4/128, DDR4 27/38 — 350 MCMs.
    """
    rack = rack if rack is not None else BaselineRack()
    mcm = mcm if mcm is not None else MCMConfig()
    packings: dict[ChipType, MCMPacking] = {}
    for chip_type, count in rack.chip_counts().items():
        spec = CHIP_CATALOG[chip_type]
        per = chips_per_mcm(spec, mcm)
        packings[chip_type] = MCMPacking(
            chip_type=chip_type,
            chips_per_mcm=per,
            rack_chips=count,
            mcms=math.ceil(count / per))
    return packings


def total_mcms(packings: dict[ChipType, MCMPacking]) -> int:
    """Total MCMs across chip types (350 for the default rack)."""
    return sum(p.mcms for p in packings.values())


def table3_rows(rack: BaselineRack | None = None,
                mcm: MCMConfig | None = None) -> list[dict]:
    """Regenerate paper Table III as a list of row dicts."""
    packings = pack_rack(rack, mcm)
    rows = []
    for chip_type in (ChipType.CPU, ChipType.GPU, ChipType.NIC,
                      ChipType.HBM, ChipType.DDR4):
        p = packings[chip_type]
        rows.append({
            "chip_type": chip_type.value,
            "chips_per_mcm": p.chips_per_mcm,
            "mcms_per_rack": p.mcms,
        })
    rows.append({"chip_type": "total", "chips_per_mcm": None,
                 "mcms_per_rack": total_mcms(packings)})
    return rows
