"""Unit helpers and physical constants used throughout the library.

All internal computation uses a small set of canonical units:

* bandwidth — **Gbps** (gigabits per second) unless a name says otherwise
  (``_gbyte_s`` suffixes denote GB/s, i.e. gigaBYTES per second);
* latency — **nanoseconds**;
* energy — **picojoules per bit**;
* power — **watts**;
* distance — **meters**.

Keeping conversions in one module avoids the classic factor-of-8 and
factor-of-1e3 bugs when mixing Gbps, GBps, and TB/s figures from the
paper's tables.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Speed of light in vacuum, meters per second.
SPEED_OF_LIGHT_M_S: float = 299_792_458.0

#: Refractive index of silica optical fiber assumed by the paper (~1.5),
#: giving an effective propagation speed of ~0.75c and therefore ~5 ns/m.
FIBER_REFRACTIVE_INDEX: float = 1.5

#: Effective propagation latency through fiber, ns per meter (paper §III-C2).
FIBER_NS_PER_METER: float = 5.0

# ---------------------------------------------------------------------------
# Bandwidth conversions
# ---------------------------------------------------------------------------

BITS_PER_BYTE: int = 8


def gbps_to_gbyte_s(gbps: float) -> float:
    """Convert gigabits/s to gigabytes/s."""
    return gbps / BITS_PER_BYTE


def gbyte_s_to_gbps(gbyte_s: float) -> float:
    """Convert gigabytes/s to gigabits/s."""
    return gbyte_s * BITS_PER_BYTE


def tbyte_s_to_gbps(tbyte_s: float) -> float:
    """Convert terabytes/s to gigabits/s (1 TB/s = 8000 Gbps)."""
    return tbyte_s * 1000.0 * BITS_PER_BYTE


def gbps_to_tbyte_s(gbps: float) -> float:
    """Convert gigabits/s to terabytes/s."""
    return gbps / (1000.0 * BITS_PER_BYTE)


# ---------------------------------------------------------------------------
# Energy / power conversions
# ---------------------------------------------------------------------------


def pj_per_bit_to_watts(pj_per_bit: float, gbps: float) -> float:
    """Power (W) drawn by a link running at ``gbps`` with ``pj_per_bit`` energy.

    1 pJ/bit at 1 Gbps = 1e-12 J/bit * 1e9 bit/s = 1e-3 W, hence the 1e-3
    factor below.
    """
    return pj_per_bit * gbps * 1e-3


def watts_to_pj_per_bit(watts: float, gbps: float) -> float:
    """Inverse of :func:`pj_per_bit_to_watts`."""
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps}")
    return watts / (gbps * 1e-3)


# ---------------------------------------------------------------------------
# Latency helpers
# ---------------------------------------------------------------------------


def propagation_latency_ns(distance_m: float,
                           ns_per_meter: float = FIBER_NS_PER_METER) -> float:
    """Fiber propagation latency over ``distance_m`` meters."""
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    return distance_m * ns_per_meter


def serialization_latency_ns(payload_bits: float, gbps: float) -> float:
    """Time to serialize ``payload_bits`` onto a link of ``gbps``.

    1 Gbps moves 1 bit per ns, so latency in ns is bits / Gbps.
    """
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps}")
    return payload_bits / gbps


def ns_to_cycles(ns: float, clock_ghz: float) -> float:
    """Convert nanoseconds to clock cycles at ``clock_ghz``."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz}")
    return ns * clock_ghz


def cycles_to_ns(cycles: float, clock_ghz: float) -> float:
    """Convert clock cycles at ``clock_ghz`` to nanoseconds."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz}")
    return cycles / clock_ghz
