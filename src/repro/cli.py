"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro table1           # Table I link technologies
    python -m repro table3           # MCM packing
    python -m repro fig6 --latency 35
    python -m repro fig12
    python -m repro isoperf --empirical
    python -m repro all              # everything, in paper order

Every subcommand prints the same rows the corresponding
``benchmarks/bench_*.py`` module asserts against.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import render_kv, render_table


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.photonics.links import table1_rows
    print(render_table(table1_rows(args.escape),
                       title=f"Table I ({args.escape} TB/s escape)"))


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.photonics.switches import table2_rows
    print(render_table(table2_rows(), title="Table II"))


def _cmd_table3(args: argparse.Namespace) -> None:
    from repro.rack.mcm import table3_rows
    print(render_table(table3_rows(), title="Table III"))


def _cmd_table4(args: argparse.Namespace) -> None:
    from repro.photonics.switches import table4_rows
    print(render_table(table4_rows(), title="Table IV"))


def _cmd_fig5(args: argparse.Namespace) -> None:
    from repro.rack.design import plan_awgr_fabric, plan_wss_fabric
    awgr = plan_awgr_fabric()
    wss = plan_wss_fabric()
    print(render_kv({
        "AWGR planes": awgr.planes,
        "min direct wavelengths/pair": awgr.min_direct_wavelengths(),
        "guaranteed pair Gbps": awgr.guaranteed_pair_gbps(),
        "WSS switches": wss.n_switches,
        "min direct WSS paths/pair": wss.min_direct_paths(),
    }, title="Fig. 5 connectivity"))


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.core.slowdown import run_cpu_study, suite_summary
    results = run_cpu_study(args.latency)
    rows = [{"suite": s.suite, "input": s.input_size, "core": s.core,
             "mean": s.mean_slowdown, "max": s.max_slowdown}
            for s in suite_summary(results)]
    print(render_table(rows, title=f"Fig. 6 @ {args.latency} ns"))


def _cmd_fig7(args: argparse.Namespace) -> None:
    from repro.analysis.stats import pearson
    from repro.core.slowdown import run_cpu_study
    from repro.workloads.cpu_suites import (
        parsec_benchmarks,
        rodinia_cpu_benchmarks,
    )
    benches = parsec_benchmarks("large") + rodinia_cpu_benchmarks()
    results = run_cpu_study(args.latency, benchmarks=benches)
    rows = [{"benchmark": r.name, "core": r.core, "slowdown": r.slowdown,
             "llc_miss_rate": r.llc_miss_rate}
            for r in results if r.core == "inorder"]
    print(render_table(sorted(rows, key=lambda r: -r["slowdown"]),
                       title=f"Fig. 7 @ {args.latency} ns"))
    sel = [r for r in results if r.core == "inorder"]
    r = pearson([x.slowdown for x in sel], [x.llc_miss_rate for x in sel])
    print(f"\nPearson(slowdown, LLC miss rate) = {r:.3f}")


def _cmd_fig8(args: argparse.Namespace) -> None:
    from repro.core.slowdown import run_cpu_study
    rows = []
    for ns in (25.0, 30.0, 35.0):
        results = run_cpu_study(ns)
        for core in ("inorder", "ooo"):
            sel = [r.slowdown for r in results if r.core == core]
            rows.append({"extra_ns": ns, "core": core,
                         "mean": float(np.mean(sel)),
                         "max": float(np.max(sel))})
    print(render_table(rows, title="Fig. 8 latency sensitivity"))


def _cmd_fig9(args: argparse.Namespace) -> None:
    from repro.core.slowdown import run_gpu_study
    rows = [{"application": g.name, "slowdown": g.slowdown,
             "llc_miss_rate": g.llc_miss_rate}
            for g in run_gpu_study(args.latency)]
    print(render_table(sorted(rows, key=lambda r: -r["slowdown"]),
                       title=f"Fig. 9 @ {args.latency} ns"))
    print(f"\nmean = {np.mean([r['slowdown'] for r in rows]):.4f} "
          "(paper 0.0535)")


def _cmd_fig11(args: argparse.Namespace) -> None:
    from repro.core.slowdown import cpu_gpu_rodinia_comparison
    rows = [{"benchmark": r.benchmark, "inorder": r.inorder,
             "ooo": r.ooo, "gpu": r.gpu}
            for r in cpu_gpu_rodinia_comparison(args.latency)]
    print(render_table(rows, title=f"Fig. 11 @ {args.latency} ns"))


def _cmd_fig12(args: argparse.Namespace) -> None:
    from repro.core.comparison import electronic_vs_photonic
    _, summaries = electronic_vs_photonic()
    rows = [{"core": s.core, "mean_speedup": s.mean_speedup,
             "max_speedup": s.max_speedup, "n": s.n} for s in summaries]
    print(render_table(rows, title="Fig. 12 photonic vs electronic"))


def _cmd_power(args: argparse.Namespace) -> None:
    from repro.core.power import rack_power_overhead
    result = rack_power_overhead()
    print(render_kv({
        "photonic W": result.photonic_w,
        "compute W": result.compute_w,
        "overhead": result.overhead_fraction,
    }, title="Power overhead (§VI-C)"))


def _cmd_bandwidth(args: argparse.Namespace) -> None:
    from repro.core.bandwidth import awgr_bandwidth_analysis
    report = awgr_bandwidth_analysis()
    print(render_kv({
        "direct pair Gbps": report.guaranteed_pair_gbps,
        "P(cpu-mem ok)": report.cpu_memory.p_sufficient,
        "P(nic-mem ok)": report.nic_memory.p_sufficient,
        "GPU headroom GB/s": report.gpu_budget.after_gpu_gpu_gbyte_s,
        "all satisfied": report.all_satisfied,
    }, title="Bandwidth analysis (§VI-A)"))


def _cmd_isoperf(args: argparse.Namespace) -> None:
    from repro.core.isoperf import iso_performance_comparison
    kwargs = {}
    if args.empirical:
        kwargs = {"memory_reduction": None, "nic_reduction": None}
    result = iso_performance_comparison(**kwargs)
    print(render_kv({
        "baseline modules": result.baseline_total,
        "disaggregated modules": result.disaggregated_total,
        "reduction": result.module_reduction,
        "memory pooling factor": result.memory_reduction,
        "nic pooling factor": result.nic_reduction,
    }, title="Iso-performance (§VI-E)"))


def _cmd_linkbudget(args: argparse.Namespace) -> None:
    from repro.photonics.linkbudget import fabric_feasibility
    print(render_table(fabric_feasibility(),
                       title="Optical link budget per switch family"))


def _cmd_claims(args: argparse.Namespace) -> None:
    from repro.paper import validate_all, validate_structural
    results = (validate_structural() if args.fast else validate_all())
    print(render_table([r.as_row() for r in results],
                       title="Paper-claims ledger"))
    failed = [r for r in results if not r.ok]
    print(f"\n{len(results) - len(failed)}/{len(results)} claims "
          "within tolerance")
    if failed:
        raise SystemExit(1)


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.analysis.report import render_sweep, render_table
    from repro.experiments import (
        EXPERIMENTS,
        ResultCache,
        SweepRunner,
        default_workers,
        get_experiment,
    )
    if args.list or not args.experiment:
        rows = [{"experiment": spec.name, "tasks": len(spec),
                 "description": spec.description}
                for spec in EXPERIMENTS.values()]
        print(render_table(rows, title="Registered sweeps"))
        if not args.experiment and not args.list:
            raise SystemExit("sweep: name an experiment or use --list")
        return
    try:
        spec = get_experiment(args.experiment)
    except KeyError as exc:
        raise SystemExit(f"sweep: {exc.args[0]}") from None
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    workers = (args.workers if args.workers is not None
               else default_workers())
    if workers < 1:
        raise SystemExit("sweep: --workers must be >= 1")
    executor = args.executor
    shard_index = shard_count = None
    if args.shard is not None:
        try:
            index_s, count_s = args.shard.split("/", 1)
            shard_index, shard_count = int(index_s), int(count_s)
        except ValueError:
            raise SystemExit("sweep: --shard must look like I/N "
                             "(e.g. 0/4)") from None
        if not 0 <= shard_index < shard_count:
            raise SystemExit("sweep: --shard index must be in [0, N)")
        executor = "shard"
        if cache is None:
            raise SystemExit("sweep: sharding needs the shared result "
                             "cache (drop --no-cache)")
    elif executor == "shard":
        raise SystemExit("sweep: --executor shard needs --shard I/N")
    runner = SweepRunner(workers=workers, cache=cache,
                         executor=executor, shard_index=shard_index,
                         shard_count=shard_count)
    result = runner.run(spec, force=args.force)
    print(render_sweep(result))
    if result.n_failed:
        for failure in result.failures():
            print(f"\nFAILED {failure.config}:\n{failure.error}")
        raise SystemExit(1)


def _cmd_scenario(args: argparse.Namespace) -> None:
    from repro.analysis.report import render_kv, render_table
    from repro.scenarios import (
        SCENARIOS,
        ScenarioRunner,
        ShardedScenarioRunner,
        demo_scenario,
        get_scenario,
        make_backend,
        run_replicated,
    )
    if args.list or (not args.scenario and not args.demo):
        rows = [{"scenario": s.name, "nodes": s.n_nodes,
                 "epochs": s.n_epochs, "events": len(s.events),
                 "description": s.description}
                for s in SCENARIOS.values()]
        print(render_table(rows, title="Registered scenarios"))
        if not args.scenario and not args.demo and not args.list:
            raise SystemExit(
                "scenario: name a scenario or use --demo / --list")
        return
    if args.demo:
        scenario = demo_scenario()
    else:
        try:
            scenario = get_scenario(args.scenario)
        except KeyError as exc:
            raise SystemExit(f"scenario: {exc.args[0]}") from None
    if args.epochs is not None:
        if args.epochs < 1:
            raise SystemExit("scenario: --epochs must be >= 1")
        scenario = scenario.with_epochs(args.epochs)
    title = f"Scenario '{scenario.name}' on {args.backend}"
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("scenario: --shards must be >= 1")
        if args.repeats > 1:
            raise SystemExit("scenario: --repeats and --shards are "
                             "mutually exclusive")
        if args.seeding != "per-epoch":
            raise SystemExit(
                "scenario: --shards requires per-epoch seeding "
                "(sequential streams are not shardable)")
        if (args.shard_index is not None
                and not 0 <= args.shard_index < args.shards):
            raise SystemExit("scenario: --shard-index must be in "
                             "[0, --shards)")
        if args.chunk_epochs < 1:
            raise SystemExit("scenario: --chunk-epochs must be >= 1")
        if args.workers < 1:
            raise SystemExit("scenario: --workers must be >= 1")
        from repro.experiments import ResultCache
        runner = ShardedScenarioRunner(
            scenario, backend=args.backend,
            chunk_epochs=args.chunk_epochs, boundary=args.boundary,
            shards=args.shards,
            shard_index=args.shard_index, base_seed=args.seed,
            cache=ResultCache(args.cache_dir), workers=args.workers)
        result = runner.run(resume=args.resume)
        print(render_table(
            result.rows(),
            title=f"{title} — {args.shards}-shard chunk replay "
                  f"({args.boundary} boundaries)"))
        print()
        print(result.summary())
        if result.complete:
            print()
            print(render_kv(result.report().as_dict(),
                            title="Aggregate"))
        if result.n_failed:
            for chunk in result.chunks:
                if chunk.state == "failed":
                    print(f"\nFAILED chunk {chunk.index} "
                          f"[{chunk.start}, {chunk.stop}): "
                          f"{chunk.error}")
            raise SystemExit(1)
        return
    if args.repeats > 1:
        metrics = run_replicated(
            scenario,
            lambda seed: make_backend(args.backend, scenario.n_nodes,
                                      seed=seed),
            repeats=args.repeats, base_seed=args.seed,
            seeding=args.seeding)
        rows = [{"metric": name, **ci}
                for name, ci in metrics.items()]
        print(render_table(
            rows, title=f"{title} — {args.repeats} seeds, "
                        "mean and 95% CI"))
        return
    backend = make_backend(args.backend, scenario.n_nodes,
                           seed=args.seed)
    report = ScenarioRunner(scenario, backend,
                            seeding=args.seeding).run(seed=args.seed)
    print(render_table(report.rows(), title=f"{title} — per-epoch"))
    print()
    print(render_kv(report.as_dict(), title="Aggregate"))


def _cmd_arena(args: argparse.Namespace) -> None:
    from repro.analysis.report import render_table
    from repro.scenarios import (
        SCENARIOS,
        available_backends,
        backend_info,
        demo_scenario,
        get_scenario,
        run_arena,
    )
    if args.list or (not args.scenario and not args.demo):
        rows = [{"backend": name,
                 "class": backend_info(name).cls.__name__,
                 **backend_info(name).capabilities(),
                 "description": backend_info(name).description}
                for name in available_backends()]
        print(render_table(rows, title="Registered backends"))
        if not args.scenario and not args.demo and not args.list:
            raise SystemExit(
                "arena: name a scenario or use --demo / --list")
        return
    if args.demo:
        scenario = demo_scenario()
    else:
        try:
            scenario = get_scenario(args.scenario)
        except KeyError as exc:
            raise SystemExit(f"arena: {exc.args[0]}") from None
    if args.epochs is not None:
        if args.epochs < 1:
            raise SystemExit("arena: --epochs must be >= 1")
        scenario = scenario.with_epochs(args.epochs)
    backends = None
    if args.backends:
        backends = tuple(part.strip()
                         for part in args.backends.split(",")
                         if part.strip())
    try:
        arena = run_arena(scenario, backends=backends, seed=args.seed)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"arena: {exc.args[0]}") from None
    print(render_table(
        arena.rows(),
        title=f"Arena '{scenario.name}' — {len(arena.backends)} "
              f"backends, {scenario.n_epochs} epochs, one pass"))
    print()
    print(render_table(
        arena.iso_performance(),
        title="Iso-performance frontier (power to match the "
              "fastest)"))
    print()
    print(render_table(
        arena.iso_power(),
        title="Iso-power frontier (bandwidth inside the leanest "
              "budget)"))


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.experiments import ResultCache
    from repro.service import ServiceGateway, SessionPool, SessionStore
    store = None
    if args.store_dir:
        store = SessionStore(ResultCache(args.store_dir))
    if args.workers < 1:
        raise SystemExit("serve: --workers must be >= 1")
    if args.slice_epochs < 1:
        raise SystemExit("serve: --slice-epochs must be >= 1")
    pool = SessionPool(workers=args.workers,
                       slice_epochs=args.slice_epochs, store=store)
    gateway = ServiceGateway(pool, host=args.host, port=args.port,
                             verbose=args.verbose)
    print(f"repro service listening on {gateway.url} "
          f"({args.workers} workers, {args.slice_epochs}-epoch "
          "slices)", flush=True)
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        pass


def _cmd_submit(args: argparse.Namespace) -> None:
    from urllib.error import URLError

    from repro.analysis.report import render_kv, render_table
    from repro.service import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    try:
        summary = client.submit(args.scenario, backend=args.backend,
                                base_seed=args.seed,
                                n_epochs=args.epochs)
    except URLError as exc:
        raise SystemExit(f"submit: cannot reach {args.url} "
                         f"({exc.reason}) — is `repro serve` "
                         "running?") from None
    except ServiceError as exc:
        raise SystemExit(f"submit: {exc}") from None
    session_id = summary["id"]
    print(f"submitted session {session_id} "
          f"({summary['scenario']} on {summary['backend']}, "
          f"{summary['n_epochs']} epochs)")
    if args.detach:
        return
    rows = []
    for event, epoch, data in client.stream(session_id):
        if event == "epoch":
            rows.append({"epoch": epoch,
                         "carried_gbps": data["carried_gbps"],
                         "blocked": data["blocked"],
                         "indirect": data["indirect"]})
        else:
            print(f"session parked: {data['state']}")
    if rows:
        print(render_table(rows, title=f"Session {session_id} epochs"))
    detail = client.session(session_id)
    print()
    print(render_kv(detail["aggregates"], title="Aggregate"))


def _cmd_check(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro import checks

    if args.list_rules:
        print(checks.render_rules())
        return
    paths = args.paths
    if not paths:
        # Repo-root invocation checks the source tree; elsewhere, fall
        # back to the installed package itself.
        default = Path("src/repro")
        paths = [default if default.is_dir()
                 else Path(__file__).resolve().parent]
    rules = [r.upper() for r in args.select] if args.select else None
    # Project rules (SIM005/SIM006) resolve names and twin-test
    # evidence across the whole repo: index the test tree when it is
    # not already among the checked paths.
    index_paths = []
    tests_dir = Path("tests")
    if tests_dir.is_dir():
        index_paths.append(tests_dir)
    try:
        report = checks.run_checks(
            paths, rules=([] if args.parse_only else rules),
            jobs=args.jobs, index_paths=index_paths,
            strict_suppressions=args.strict_suppressions)
    except KeyError as exc:
        raise SystemExit(f"check: {exc.args[0]}") from None
    if args.parse_only:
        for error in report.errors:
            print(error.render())
        print(f"{report.files} files parsed, "
              f"{len(report.errors)} error(s)")
        if report.errors:
            raise SystemExit(1)
        return
    if args.write_baseline:
        checks.write_baseline(args.baseline, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to "
              f"{args.baseline}")
        return
    baseline = (checks.load_baseline(args.baseline)
                if not args.no_baseline else None) or {}
    comparison = checks.compare(report.findings, baseline)
    if args.format == "json":
        print(checks.render_json(report, comparison))
    else:
        print(checks.render_text(report, comparison,
                                 verbose=args.show_baselined))
    if comparison.new or report.errors:
        raise SystemExit(1)


_COMMANDS = {
    "table1": (_cmd_table1, "Table I link technologies"),
    "table2": (_cmd_table2, "Table II switch catalog"),
    "table3": (_cmd_table3, "Table III MCM packing"),
    "table4": (_cmd_table4, "Table IV study switch configs"),
    "fig5": (_cmd_fig5, "Fig. 5 fabric connectivity"),
    "fig6": (_cmd_fig6, "Fig. 6 CPU slowdown"),
    "fig7": (_cmd_fig7, "Fig. 7 LLC-miss correlation"),
    "fig8": (_cmd_fig8, "Fig. 8 latency sensitivity"),
    "fig9": (_cmd_fig9, "Fig. 9 GPU slowdown"),
    "fig11": (_cmd_fig11, "Fig. 11 CPU vs GPU"),
    "fig12": (_cmd_fig12, "Fig. 12 electronic comparison"),
    "power": (_cmd_power, "§VI-C power overhead"),
    "bandwidth": (_cmd_bandwidth, "§VI-A bandwidth analysis"),
    "isoperf": (_cmd_isoperf, "§VI-E iso-performance"),
    "linkbudget": (_cmd_linkbudget, "optical link budget check"),
    "claims": (_cmd_claims, "validate the paper-claims ledger"),
    "sweep": (_cmd_sweep, "run a registered parameter sweep (cached, "
                          "parallel)"),
    "scenario": (_cmd_scenario, "drive a fabric through a time-varying "
                                "workload scenario"),
    "arena": (_cmd_arena, "race one scenario through many backends in "
                          "a single pass and report iso-perf / "
                          "iso-power frontiers"),
    "check": (_cmd_check, "run the AST invariant linter (snapshot "
                          "completeness, determinism, protocol "
                          "conformance)"),
    "serve": (_cmd_serve, "run the fabric-sim service gateway "
                          "(sessions, SSE epoch streams, "
                          "suspend/resume/fork)"),
    "submit": (_cmd_submit, "submit a scenario to a running service "
                            "and stream its epochs"),
}

#: Order used by `repro all` (paper order).
_ALL_ORDER = ("table1", "table2", "table3", "table4", "fig5",
              "bandwidth", "fig6", "fig7", "fig8", "fig9", "fig11",
              "power", "fig12", "isoperf", "linkbudget")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    # One source of truth for backend names: argparse choices/help
    # derive from the plugin registry, so a newly registered backend
    # is immediately drivable from every subcommand.
    from repro.scenarios.registry import available_backends
    backend_choices = available_backends()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Efficient Intra-Rack "
                    "Resource Disaggregation for HPC Using Co-Packaged "
                    "DWDM Photonics' (CLUSTER 2023).")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name in ("fig6", "fig7", "fig9", "fig11"):
            p.add_argument("--latency", type=float, default=35.0,
                           help="extra LLC<->memory latency in ns")
        if name == "table1":
            p.add_argument("--escape", type=float, default=2.0,
                           help="escape bandwidth target in TB/s")
        if name == "isoperf":
            p.add_argument("--empirical", action="store_true",
                           help="derive pooling factors from the "
                                "utilization model instead of the "
                                "paper's 4x/2x")
        if name == "claims":
            p.add_argument("--fast", action="store_true",
                           help="structural claims only (skip the "
                                "slowdown studies)")
        if name == "sweep":
            p.add_argument("experiment", nargs="?",
                           help="registered experiment name "
                                "(see --list)")
            p.add_argument("--list", action="store_true",
                           help="list registered sweeps and exit")
            p.add_argument("--workers", type=int, default=None,
                           help="worker processes (default: CPU "
                                "count minus one, capped at 8)")
            p.add_argument("--cache-dir", default=".repro-cache",
                           help="result cache directory "
                                "(default: .repro-cache)")
            p.add_argument("--no-cache", action="store_true",
                           help="disable the result cache")
            p.add_argument("--force", action="store_true",
                           help="ignore cached results but refresh "
                                "them")
            p.add_argument("--executor", default="auto",
                           choices=("auto", "inline", "process",
                                    "shard"),
                           help="execution backend (default: auto — "
                                "inline for one worker, process pool "
                                "otherwise)")
            p.add_argument("--shard", default=None, metavar="I/N",
                           help="run only this machine's stable-hash "
                                "slice of the grid (e.g. 0/4); point "
                                "all N invocations at one --cache-dir "
                                "and they converge on the full sweep")
        if name == "scenario":
            p.add_argument("scenario", nargs="?",
                           help="registered scenario name "
                                "(see --list)")
            p.add_argument("--backend", default="awgr",
                           choices=backend_choices,
                           help="registered fabric backend to drive "
                                "(default: awgr)")
            p.add_argument("--epochs", type=int, default=None,
                           help="override the scenario's epoch count")
            p.add_argument("--seed", type=int, default=0,
                           help="base RNG seed (default: 0)")
            p.add_argument("--repeats", type=int, default=1,
                           help="run N seeds and report mean with a "
                                "95%% CI (default: 1)")
            p.add_argument("--demo", action="store_true",
                           help="run the small built-in demo scenario")
            p.add_argument("--list", action="store_true",
                           help="list registered scenarios and exit")
            p.add_argument("--seeding", default="per-epoch",
                           choices=("per-epoch", "sequential"),
                           help="epoch-seed mode: per-epoch (default, "
                                "shardable) or sequential (pre-"
                                "sharding compatibility streams)")
            p.add_argument("--shards", type=int, default=None,
                           help="run as a chunked, checkpointed "
                                "replay split across N shards "
                                "(per-epoch seeding)")
            p.add_argument("--shard-index", type=int, default=None,
                           help="with --shards: run only this shard's "
                                "chunks (omit to drive every chunk "
                                "from this process)")
            p.add_argument("--chunk-epochs", type=int, default=1440,
                           help="epochs per checkpointed chunk "
                                "(default: 1440, one day of 1-minute "
                                "epochs)")
            p.add_argument("--boundary", default="reset",
                           choices=("reset", "carry"),
                           help="chunk-boundary mode: reset (default; "
                                "fresh backend per chunk, any shard "
                                "computes any chunk) or carry "
                                "(restore the previous chunk's "
                                "backend snapshot — bit-identical to "
                                "a monolithic run, chunks pipeline "
                                "in order)")
            p.add_argument("--workers", type=int, default=1,
                           help="process-pool width for this "
                                "process's chunks (default: 1)")
            p.add_argument("--cache-dir", default=".repro-cache",
                           help="chunk checkpoint directory, shared "
                                "by all shards (default: "
                                ".repro-cache)")
            p.add_argument("--resume", action="store_true",
                           help="load chunk checkpoints already in "
                                "the cache instead of recomputing "
                                "them (interrupted-run resume / "
                                "multi-shard assembly)")
        if name == "arena":
            p.add_argument("scenario", nargs="?",
                           help="registered scenario name "
                                "(see --list)")
            p.add_argument("--backends", default=None,
                           help="comma-separated contenders in race "
                                "order (default: every registered "
                                f"backend: {','.join(backend_choices)})")
            p.add_argument("--epochs", type=int, default=None,
                           help="override the scenario's epoch count")
            p.add_argument("--seed", type=int, default=0,
                           help="base RNG seed (default: 0)")
            p.add_argument("--demo", action="store_true",
                           help="race the small built-in demo "
                                "scenario")
            p.add_argument("--list", action="store_true",
                           help="list registered backends with their "
                                "capability flags and exit")
        if name == "serve":
            p.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
            p.add_argument("--port", type=int, default=8177,
                           help="bind port; 0 picks an ephemeral one "
                                "(default: 8177)")
            p.add_argument("--workers", type=int, default=4,
                           help="session worker threads (default: 4)")
            p.add_argument("--slice-epochs", type=int, default=4,
                           help="epochs per scheduling slice "
                                "(default: 4)")
            p.add_argument("--store-dir", default=".repro-sessions",
                           help="suspended-session store directory; "
                                "empty string disables durability "
                                "(default: .repro-sessions)")
            p.add_argument("--verbose", action="store_true",
                           help="log every HTTP request")
        if name == "submit":
            p.add_argument("scenario", nargs="?", default="demo",
                           help="registered scenario name to submit "
                                "(default: demo)")
            p.add_argument("--url", default="http://127.0.0.1:8177",
                           help="gateway base URL (default: "
                                "http://127.0.0.1:8177)")
            p.add_argument("--backend", default="awgr",
                           choices=backend_choices,
                           help="registered fabric backend "
                                "(default: awgr)")
            p.add_argument("--seed", type=int, default=0,
                           help="base RNG seed (default: 0)")
            p.add_argument("--epochs", type=int, default=None,
                           help="override the scenario's epoch count")
            p.add_argument("--detach", action="store_true",
                           help="submit and exit without streaming")
        if name == "check":
            p.add_argument("paths", nargs="*",
                           help="files or directories to check "
                                "(default: src/repro)")
            p.add_argument("--format", default="text",
                           choices=("text", "json"),
                           help="report format (default: text)")
            p.add_argument("--baseline",
                           default="repro-check.baseline.json",
                           help="baseline file of grandfathered "
                                "findings (default: "
                                "repro-check.baseline.json)")
            p.add_argument("--no-baseline", action="store_true",
                           help="fail on every finding, baselined "
                                "or not")
            p.add_argument("--write-baseline", action="store_true",
                           help="record all current findings as the "
                                "new baseline and exit")
            p.add_argument("--select", action="append", metavar="RULE",
                           default=None,
                           help="check only this rule (repeatable)")
            p.add_argument("--parse-only", action="store_true",
                           help="only verify every file parses "
                                "(CI smoke); no rules run")
            p.add_argument("--list-rules", action="store_true",
                           help="print the rule catalog and exit")
            p.add_argument("--show-baselined", action="store_true",
                           help="also print findings covered by the "
                                "baseline")
            p.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="parse and per-file-check N files in "
                                "parallel (default: 1)")
            p.add_argument("--strict-suppressions",
                           action="store_true",
                           help="report suppression directives that "
                                "no longer match any finding (SUP001)")
    sub.add_parser("all", help="run every experiment in paper order")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "all":
        for name in _ALL_ORDER:
            handler, _ = _COMMANDS[name]
            defaults = build_parser().parse_args([name])
            handler(defaults)
            print()
        return 0
    handler, _ = _COMMANDS[args.command]
    handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
