"""Registered experiment sweeps (the paper's parameter studies).

Each spec reproduces what a ``benchmarks/bench_*.py`` module used to
hand-roll as a serial loop: one grid point per loop iteration, with
all of the loop's hard-coded constants carried in the config so the
sweep engine regenerates *bit-identical* metrics. Factories and
extractors are module-level functions so they pickle into worker
processes.

These registered sweeps are deterministic *replays*: their RNG inputs
are pinned in the config (``rng_seed`` etc.), so the engine-derived
``seed`` argument — and therefore ``ExperimentSpec.base_seed`` — does
not change their results, only their cache identity. The AWGR
simulations ride the vectorized batch-admission hot path
(``AWGRNetworkSimulator.run`` defaults to ``batch_admission=True``),
which is bit-identical to the historical per-flow loop, so previously
cached metrics replay unchanged. For resampling
studies, write a factory that consumes ``seed`` (see
``examples/sweep_demo.py``) instead of pinning seeds in config.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import SENSITIVITY_POINTS_NS
from repro.experiments.spec import ExperimentSpec
from repro.network.simulator import AWGRNetworkSimulator, SimulationReport
from repro.network.traffic import Flow, uniform_traffic


def report_metrics(report: SimulationReport) -> dict:
    """Standard metric extraction for AWGR simulation reports."""
    return report.as_dict()


def identity_metrics(result: dict) -> dict:
    """For factories that already produce a flat metrics dict."""
    return result


# -- hotspot + staleness studies (§IV / §IV-A) -------------------------------

def hotspot_staleness_task(config: dict, seed: int) -> SimulationReport:
    """Uniform background plus a node-0 hotspot, at one staleness.

    Covers both the §IV-A staleness ablation (light hotspot) and the
    §IV indirect-routing study (hotspot past the direct budget):
    ``uniform_flows`` sizes the background and ``hotspot_repeats``
    multiplies the three hotspot senders.
    """
    sim = AWGRNetworkSimulator(
        n_nodes=config["n_nodes"], planes=config["planes"],
        flows_per_wavelength=1,
        state_update_period=config["update_period"],
        rng_seed=config["rng_seed"])
    batches = []
    for _ in range(config["n_batches"]):
        batch = uniform_traffic(config["n_nodes"],
                                config["uniform_flows"], gbps=25.0)
        batch += [Flow(src, 0, gbps=25.0)
                  for src in (1, 2, 3)
                  for _ in range(config["hotspot_repeats"])]
        batches.append(batch)
    return sim.run(batches, duration_slots=config["duration_slots"])


ABLATION_STALENESS = ExperimentSpec(
    name="ablation_staleness",
    description="§IV-A: piggyback staleness vs acceptance",
    factory=hotspot_staleness_task,
    metrics=report_metrics,
    grid={"update_period": (1, 5, 25, 125)},
    fixed={"n_nodes": 24, "planes": 3, "rng_seed": 9, "n_batches": 10,
           "uniform_flows": 10, "hotspot_repeats": 1,
           "duration_slots": 3})

INDIRECT_ROUTING = ExperimentSpec(
    name="indirect_routing",
    description="§IV: indirect routing under hotspot load",
    factory=hotspot_staleness_task,
    metrics=report_metrics,
    grid={"update_period": (1, 40)},
    fixed={"n_nodes": 32, "planes": 5, "rng_seed": 11, "n_batches": 6,
           "uniform_flows": 20, "hotspot_repeats": 4,
           "duration_slots": 3})


# -- AWGR plane-count and plane-failure ablations ------------------------------

def awgr_planes_task(config: dict, seed: int) -> SimulationReport:
    """Hotspot overload at one plane count (plane-count ablation)."""
    sim = AWGRNetworkSimulator(
        n_nodes=config["n_nodes"], planes=config["planes"],
        flows_per_wavelength=1, rng_seed=config["rng_seed"])
    batch = [Flow(src, 0, gbps=25.0)
             for src in (1, 2, 3, 4)
             for _ in range(config["hotspot_flows"])]
    return sim.run([batch], duration_slots=config["duration_slots"])


ABLATION_AWGR_PLANES = ExperimentSpec(
    name="ablation_awgr_planes",
    description="ablation: AWGR plane count vs hotspot acceptance",
    factory=awgr_planes_task,
    metrics=report_metrics,
    grid={"planes": (2, 3, 5, 8)},
    fixed={"n_nodes": 16, "rng_seed": 4, "hotspot_flows": 6,
           "duration_slots": 4})


def plane_failure_task(config: dict, seed: int) -> SimulationReport:
    """Uniform + hotspot load with N planes failed at the start."""
    sim = AWGRNetworkSimulator(
        n_nodes=config["n_nodes"], planes=config["planes"],
        flows_per_wavelength=1, rng_seed=config["rng_seed"])
    for plane in range(config["failed_planes"]):
        sim.allocator.fail_plane(plane)
    batches = []
    for _ in range(config["n_batches"]):
        batch = uniform_traffic(config["n_nodes"],
                                config["uniform_flows"], gbps=25.0)
        batch += [Flow(src, 0, gbps=25.0) for src in (1, 2, 3)]
        batches.append(batch)
    return sim.run(batches, duration_slots=config["duration_slots"])


ABLATION_PLANE_FAILURE = ExperimentSpec(
    name="ablation_plane_failure",
    description="ablation: graceful degradation under AWGR plane "
                "failures",
    factory=plane_failure_task,
    metrics=report_metrics,
    grid={"failed_planes": (0, 1, 2)},
    fixed={"n_nodes": 16, "planes": 5, "rng_seed": 13, "n_batches": 4,
           "uniform_flows": 10, "duration_slots": 2})


# -- DRAM-load calibration ablation (EXPERIMENTS.md note) ----------------------

def dram_load_task(config: dict, seed: int) -> dict:
    """Effective miss latency and slowdown at one DRAM demand point.

    Heavier memory traffic raises the effective base LLC-to-data
    latency, which shrinks the *relative* impact of the fixed photonic
    latency adder — disaggregation hurts bandwidth-starved codes less
    than latency-bound ones. Deterministic replay: trace synthesis is
    seeded from the benchmark spec, not from ``seed``.
    """
    from repro.cpu.dram import DRAMChannel
    from repro.cpu.memory import MemoryModel
    from repro.cpu.simulator import CPUSimulator
    from repro.workloads.cpu_suites import parsec_benchmarks

    channel = DRAMChannel()
    bench = next(b for b in parsec_benchmarks(config["input_size"])
                 if b.name == config["benchmark"])
    demand = config["demand_gbyte_s"]
    base_ns = channel.effective_miss_latency_ns(demand,
                                                blp=config["blp"])
    sim = CPUSimulator(memory=MemoryModel(base_latency_ns=base_ns))
    result = sim.run_inorder(bench.trace_spec(), config["latency_ns"],
                             cpi_base=bench.cpi_inorder)
    return {
        "demand_gbyte_s": demand,
        "effective_base_ns": base_ns,
        "queueing_ns": channel.queueing_ns(demand),
        "slowdown": result.slowdown,
    }


ABLATION_DRAM_LOAD = ExperimentSpec(
    name="ablation_dram_load",
    description="ablation: DRAM load vs effective miss latency vs "
                "slowdown at the 35 ns adder",
    factory=dram_load_task,
    metrics=identity_metrics,
    grid={"demand_gbyte_s": (2.0, 5.0, 12.0, 20.0)},
    fixed={"benchmark": "canneal", "input_size": "large", "blp": 4.0,
           "latency_ns": 35.0})


def ooo_window_task(config: dict, seed: int) -> dict:
    """Mean/max OOO slowdown at one (hide window, MLP scale) point.

    §VII's latency-tolerance argument quantified: every Parsec trace
    is replayed through an OutOfOrderCore with the swept hide window
    and MLP scaling. Trace synthesis is seeded from the benchmark
    spec, so replays are deterministic regardless of ``seed``.
    """
    from repro.cpu.core_ooo import OutOfOrderCore
    from repro.cpu.simulator import CPUSimulator
    from repro.workloads.cpu_suites import parsec_benchmarks

    sim = CPUSimulator()
    slowdowns = []
    for bench in parsec_benchmarks(config["input_size"]):
        stats = sim.cache_stats(bench.trace_spec())
        core = OutOfOrderCore(
            cpi_exec=bench.cpi_ooo,
            mlp=min(16.0, bench.mlp() * config["mlp_scale"]),
            hide_cycles=config["hide_cycles"],
            hierarchy=sim.hierarchy)
        slowdowns.append(core.slowdown(stats, sim.memory,
                                       config["latency_ns"]))
    return {
        "hide_cycles": config["hide_cycles"],
        "mlp_scale": config["mlp_scale"],
        "mean_slowdown": float(np.mean(slowdowns)),
        "max_slowdown": float(np.max(slowdowns)),
    }


ABLATION_OOO_WINDOW = ExperimentSpec(
    name="ablation_ooo_window",
    description="ablation: OOO hide window x MLP scaling vs mean "
                "slowdown at the 35 ns adder (§VII)",
    factory=ooo_window_task,
    metrics=identity_metrics,
    grid={"hide_cycles": (0.0, 24.0, 60.0, 120.0),
          "mlp_scale": (1.0, 2.0)},
    fixed={"input_size": "large", "latency_ns": 35.0})


# -- structural replays (Fig. 5 and §VI-C) -------------------------------------

def fig5_connectivity_task(config: dict, seed: int) -> dict:
    """Build both fabric plans and report connectivity invariants."""
    from repro.rack.design import plan_awgr_fabric, plan_wss_fabric

    awgr = plan_awgr_fabric()
    wss = plan_wss_fabric()
    return {
        "awgr_planes": awgr.planes,
        "awgr_min_direct_wavelengths": awgr.min_direct_wavelengths(),
        "awgr_guaranteed_pair_gbps": awgr.guaranteed_pair_gbps(),
        "wss_switches": wss.n_switches,
        "wss_min_direct_paths": wss.min_direct_paths(),
        "wss_max_ports_per_mcm": int(wss.ports_per_mcm().max()),
    }


FIG5_CONNECTIVITY = ExperimentSpec(
    name="fig5_connectivity",
    description="Fig. 5 / §V-B: fabric connectivity invariants",
    factory=fig5_connectivity_task,
    metrics=identity_metrics)


def power_overhead_task(config: dict, seed: int) -> dict:
    """§VI-C photonic power overhead arithmetic."""
    from repro.core.power import rack_power_overhead

    result = rack_power_overhead()
    return {
        "photonic_w": result.photonic_w,
        "compute_w": result.compute_w,
        "overhead_fraction": result.overhead_fraction,
    }


POWER_OVERHEAD = ExperimentSpec(
    name="power_overhead",
    description="§VI-C: photonic power overhead vs rack compute",
    factory=power_overhead_task,
    metrics=identity_metrics)


# -- CPU slowdown studies (Figs. 6 and 8) --------------------------------------

def cpu_slowdown_task(config: dict, seed: int) -> dict:
    """Run the CPU study for one (latency, core) point.

    One grid point per core type: the paper generates one gem5
    checkpoint per benchmark and feeds both core models, but the trace
    synthesis is deterministic, so splitting the cores into parallel
    tasks reproduces identical numbers. Metrics are flattened to
    ``"<suite>.<input>.<stat>"`` keys plus the across-suite mean/max.
    """
    from repro.core.slowdown import run_cpu_study, suite_summary

    results = run_cpu_study(config["latency_ns"],
                            cores=(config["core"],))
    out: dict = {
        "overall_mean_slowdown": float(
            np.mean([r.slowdown for r in results])),
        "overall_max_slowdown": float(
            np.max([r.slowdown for r in results])),
    }
    for group in suite_summary(results):
        prefix = f"{group.suite}.{group.input_size}"
        out[f"{prefix}.mean_slowdown"] = group.mean_slowdown
        out[f"{prefix}.max_slowdown"] = group.max_slowdown
        out[f"{prefix}.n"] = group.n
    return out


FIG6_CPU_SLOWDOWN = ExperimentSpec(
    name="fig6_cpu_slowdown",
    description="Fig. 6: per-suite CPU slowdown at the 35 ns adder",
    factory=cpu_slowdown_task,
    metrics=identity_metrics,
    grid={"core": ("inorder", "ooo")},
    fixed={"latency_ns": 35.0})


FIG8_LATENCY_SENSITIVITY = ExperimentSpec(
    name="fig8_latency_sensitivity",
    description="Fig. 8: CPU slowdown vs 25/30/35 ns extra latency",
    factory=cpu_slowdown_task,
    metrics=identity_metrics,
    grid={"latency_ns": SENSITIVITY_POINTS_NS,
          "core": ("inorder", "ooo")})


# -- Table IV switch configurations --------------------------------------------

def table4_switch_task(config: dict, seed: int) -> dict:
    """Regenerate one Table IV row (one switch family per task).

    Same row shape as ``repro.photonics.switches.table4_rows`` but
    formatted for the single requested family only.
    """
    from repro.photonics.switches import study_switch_configs

    tech = study_switch_configs()[config["switch_type"]]
    return {
        "switch_type": config["switch_type"],
        "radix": tech.radix,
        "gbps_per_wavelength": tech.gbps_per_wavelength,
        "wavelengths_per_port": tech.wavelengths_per_port,
    }


TABLE4_SWITCH_CONFIGS = ExperimentSpec(
    name="table4_switch_configs",
    description="Table IV: study switch configurations by family",
    factory=table4_switch_task,
    metrics=identity_metrics,
    grid={"switch_type": ("awgr", "spatial", "wave-selective")})


# -- placement bandwidth (§VI-A, empirical) ----------------------------------

def placement_bandwidth_task(config: dict, seed: int) -> dict:
    """Place a production job mix and offer its traffic to the fabric."""
    from repro.core.allocation import JobRequest
    from repro.core.placement import PlacementEngine

    engine = PlacementEngine()
    jobs = []
    for i in range(config["gpu_jobs"]):
        jobs.append(JobRequest(f"gpu-{i}", cpus=2, gpus=8,
                               memory_gbyte=256.0, nic_gbps=200.0))
    for i in range(config["mem_jobs"]):
        jobs.append(JobRequest(f"mem-{i}", cpus=4, gpus=0,
                               memory_gbyte=2048.0, nic_gbps=100.0))
    for i in range(config["bal_jobs"]):
        jobs.append(JobRequest(f"bal-{i}", cpus=2, gpus=4,
                               memory_gbyte=512.0, nic_gbps=200.0))
    report, flows = engine.validate_bandwidth(
        jobs, planes=config["planes"])
    return {"logical_flows": len(flows), **report.as_dict()}


PLACEMENT_BANDWIDTH = ExperimentSpec(
    name="placement_bandwidth",
    description="§VI-A empirical: job mix placed on the AWGR fabric",
    factory=placement_bandwidth_task,
    metrics=identity_metrics,
    grid={"planes": (6,)},
    fixed={"gpu_jobs": 6, "mem_jobs": 6, "bal_jobs": 6})


# -- case (A) AWGR vs case (B) WSS (§VI-A) -----------------------------------

def shifting_batches(n_nodes: int, n_slots: int, seed: int
                     ) -> list[list[Flow]]:
    """Uniform background plus a hotspot that moves every slot."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n_slots):
        batch = uniform_traffic(n_nodes, 10, gbps=25.0, rng=rng)
        hot = int(rng.integers(n_nodes))  # hotspot moves every slot
        batch += [Flow(src, hot, gbps=25.0)
                  for src in range(n_nodes) if src != hot][:6]
        batches.append(batch)
    return batches


def case_fabric_task(config: dict, seed: int) -> dict:
    """Run one fabric (AWGR or WSS) against the shifting demand."""
    batches = shifting_batches(config["n_nodes"], config["n_slots"],
                               config["traffic_seed"])
    if config["fabric"] == "awgr":
        sim = AWGRNetworkSimulator(
            n_nodes=config["n_nodes"], planes=5,
            flows_per_wavelength=1, rng_seed=config["traffic_seed"])
        report = sim.run([list(b) for b in batches], duration_slots=1)
        return {"fabric": "case A: AWGR + indirect routing",
                "throughput_ratio": report.throughput_ratio,
                "reconfigurations": 0,
                "downtime_s": 0.0}
    from repro.network.wss_simulator import WSSNetworkSimulator
    # 5 parallel switches x 16 wavelengths/port matches the AWGR's raw
    # per-node capacity; scheduler re-plans every 2 slots.
    wss = WSSNetworkSimulator(n_nodes=config["n_nodes"], n_switches=5,
                              wavelengths_per_port=16,
                              reconfig_period=2, slot_time_s=1.0)
    report = wss.run([list(b) for b in batches])
    return {"fabric": "case B: WSS + central scheduler",
            "throughput_ratio": report.throughput_ratio,
            "reconfigurations": report.reconfigurations,
            "downtime_s": report.downtime_s}


CASE_A_VS_CASE_B = ExperimentSpec(
    name="case_a_vs_case_b",
    description="§VI-A: AWGR vs reconfigurable WSS under shifting "
                "demand",
    factory=case_fabric_task,
    metrics=identity_metrics,
    grid={"fabric": ("awgr", "wss")},
    fixed={"n_nodes": 16, "n_slots": 10, "traffic_seed": 21})


def reconfigurable_shift_task(config: dict, seed: int) -> dict:
    """Reconfigurable fabric vs shifting demand (§VI-A's case B).

    One task runs the whole stateful epoch loop: each epoch draws a
    fresh random hotspot pattern, measures how much of it the *stale*
    switch configuration still serves, reconfigures, and measures
    again. The epoch rows ride along as a list metric; the scheduler
    cost counters aggregate over the run. Demand is seeded by
    ``rng_seed`` in config (pinned — replays bit-identically from the
    cache), not by the sweep ``seed``.
    """
    from repro.network.reconfig import ReconfigurableFabric

    rng = np.random.default_rng(config["rng_seed"])
    n = config["n_nodes"]
    fabric = ReconfigurableFabric(
        n_switches=config["n_switches"], radix=n,
        wavelengths_per_port=config["wavelengths_per_port"],
        reconfig_time_s=config["reconfig_time_s"],
        scheduler_latency_s=config["scheduler_latency_s"])
    rows = []
    demand = None
    for epoch in range(config["n_epochs"]):
        new_demand = rng.random((n, n)) * 10.0
        hot = rng.integers(n)
        new_demand[:, hot] += 40.0
        np.fill_diagonal(new_demand, 0.0)
        served_before = (fabric.served_fraction(new_demand)
                         if demand is not None else 0.0)
        fabric.reconfigure(new_demand)
        rows.append({
            "epoch": epoch,
            "served_before_reconfig": float(served_before),
            "served_after_reconfig":
                float(fabric.served_fraction(new_demand)),
        })
        demand = new_demand
    return {
        "epoch_rows": rows,
        "min_served_after": min(r["served_after_reconfig"]
                                for r in rows),
        "reconfigurations": fabric.reconfigurations,
        "ports_disturbed": fabric.ports_disturbed,
        "time_reconfiguring_s": fabric.time_reconfiguring_s,
    }


ABLATION_RECONFIGURABLE = ExperimentSpec(
    name="ablation_reconfigurable",
    description="ablation: reconfigurable fabric (case B) vs "
                "shifting per-epoch demand",
    factory=reconfigurable_shift_task,
    metrics=identity_metrics,
    fixed={"n_nodes": 32, "n_switches": 4, "wavelengths_per_port": 16,
           "reconfig_time_s": 1e-3, "scheduler_latency_s": 1e-3,
           "n_epochs": 6, "rng_seed": 5})


# -- Fig. 12 photonic vs electronic (§VI-D) ----------------------------------

def fig12_comparison_task(config: dict, seed: int) -> dict:
    """Run the full Fig. 12 comparison for one parameter point.

    One task covers all three core types: the underlying CPU study is
    shared between the photonic and electronic runs, so splitting the
    cores into grid points would recompute it. Per-core summaries are
    flattened to ``"<core>_<stat>"`` keys; the ten largest
    per-benchmark speedups ride along for report tables.
    """
    from repro.core.comparison import electronic_vs_photonic

    entries, summaries = electronic_vs_photonic(
        photonic_ns=config["photonic_ns"],
        gpu_bandwidth_derate=config["gpu_bandwidth_derate"])
    out: dict = {
        "min_speedup": min(e.speedup for e in entries),
    }
    for summary in summaries:
        out[f"{summary.core}_mean_speedup"] = summary.mean_speedup
        out[f"{summary.core}_max_speedup"] = summary.max_speedup
        out[f"{summary.core}_n"] = summary.n
    top = sorted(entries, key=lambda e: -e.speedup)[:10]
    out["top_speedups"] = [{
        "benchmark": e.name, "core": e.core, "speedup": e.speedup,
        "photonic_slowdown": e.photonic_slowdown,
        "electronic_slowdown": e.electronic_slowdown,
    } for e in top]
    return out


FIG12_ELECTRONIC_COMPARISON = ExperimentSpec(
    name="fig12_electronic_comparison",
    description="Fig. 12: photonic (35 ns) vs best-electronic (85 ns) "
                "speedups per core type",
    factory=fig12_comparison_task,
    metrics=identity_metrics,
    fixed={"photonic_ns": 35.0, "gpu_bandwidth_derate": 0.2})


# -- iso-performance (§VI-E) -------------------------------------------------

def isoperf_task(config: dict, seed: int) -> dict:
    """Measured slowdowns -> §VI-E module arithmetic + pooling check."""
    from repro.core.isoperf import (
        double_throughput_alternative,
        iso_performance_comparison,
        pooling_reduction_factor,
    )
    from repro.core.slowdown import (
        overall_mean,
        run_cpu_study,
        run_gpu_study,
    )

    latency = config["latency_ns"]
    cpu = run_cpu_study(latency, cores=("inorder",))
    cpu_slow = overall_mean(cpu, "inorder")
    gpu_slow = float(np.mean(
        [g.slowdown for g in run_gpu_study(latency)]))
    result = iso_performance_comparison(cpu_slowdown=cpu_slow,
                                        gpu_slowdown=gpu_slow)
    alt = double_throughput_alternative()
    return {
        "cpu_slowdown": cpu_slow,
        "gpu_slowdown": gpu_slow,
        "baseline_modules": result.baseline_total,
        "disaggregated_modules": result.disaggregated_total,
        "module_reduction": result.module_reduction,
        "empirical_memory_pooling":
            pooling_reduction_factor("memory_capacity"),
        "empirical_nic_pooling":
            pooling_reduction_factor("nic_bandwidth"),
        "alt_chip_increase": alt["chip_increase"],
    }


ISOPERF = ExperimentSpec(
    name="isoperf",
    description="§VI-E: iso-performance module comparison",
    factory=isoperf_task,
    metrics=identity_metrics,
    grid={"latency_ns": (35.0,)})


# -- §VI-A bandwidth satisfaction and §III-C3 FEC/BER budget -------------------

def bandwidth_analysis_task(config: dict, seed: int) -> dict:
    """§VI-A case-(A) bandwidth satisfaction, flattened to one row."""
    from repro.core.bandwidth import awgr_bandwidth_analysis

    report = awgr_bandwidth_analysis()
    return {
        "direct_pair_gbps": report.guaranteed_pair_gbps,
        "cpu_mem_p_sufficient": report.cpu_memory.p_sufficient,
        "cpu_mem_p_single_wavelength":
            report.cpu_memory.p_single_wavelength,
        "nic_mem_p_sufficient": report.nic_memory.p_sufficient,
        "gpu_indirect_total_gbyte_s":
            report.gpu_budget.indirect_total_gbyte_s,
        "after_hbm_gbyte_s": report.gpu_budget.after_hbm_gbyte_s,
        "after_gpu_gpu_gbyte_s":
            report.gpu_budget.after_gpu_gpu_gbyte_s,
        "all_satisfied": report.all_satisfied,
    }


BANDWIDTH_ANALYSIS = ExperimentSpec(
    name="bandwidth_analysis",
    description="§VI-A: case (A) direct/indirect bandwidth "
                "satisfaction per traffic class",
    factory=bandwidth_analysis_task,
    metrics=identity_metrics)


def fec_ber_task(config: dict, seed: int) -> dict:
    """§III-C3 FEC/BER budget at one raw-BER grid point."""
    from repro.photonics.fec import (
        CXL_LIGHTWEIGHT_FEC,
        flit_error_rate,
        retransmission_overhead,
    )

    raw_ber = config["raw_ber"]
    return {
        "raw_ber": raw_ber,
        "flit_fail": flit_error_rate(raw_ber),
        "residual_ber": CXL_LIGHTWEIGHT_FEC.residual_ber(raw_ber),
        "retx_overhead": retransmission_overhead(raw_ber),
        "meets_1e18": CXL_LIGHTWEIGHT_FEC.meets_memory_ber(raw_ber),
        "latency_ns_200g": CXL_LIGHTWEIGHT_FEC.total_latency_ns(200.0),
        "latency_ns_400g": CXL_LIGHTWEIGHT_FEC.total_latency_ns(400.0),
    }


FEC_BER = ExperimentSpec(
    name="fec_ber",
    description="§III-C3: lightweight FEC flit-failure suppression "
                "vs raw BER",
    factory=fec_ber_task,
    metrics=identity_metrics,
    grid={"raw_ber": (1e-4, 1e-6, 1e-8, 1e-10)})


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (ABLATION_STALENESS, INDIRECT_ROUTING,
                 ABLATION_AWGR_PLANES, ABLATION_PLANE_FAILURE,
                 ABLATION_DRAM_LOAD, ABLATION_OOO_WINDOW,
                 ABLATION_RECONFIGURABLE,
                 FIG5_CONNECTIVITY, POWER_OVERHEAD,
                 FIG6_CPU_SLOWDOWN, FIG8_LATENCY_SENSITIVITY,
                 TABLE4_SWITCH_CONFIGS, FIG12_ELECTRONIC_COMPARISON,
                 PLACEMENT_BANDWIDTH, CASE_A_VS_CASE_B, ISOPERF,
                 BANDWIDTH_ANALYSIS, FEC_BER)
}

# -- scenario sweeps (time-varying workloads, repro.scenarios) ----------------
#
# The scenario package never imports repro.experiments (dependency is
# one-directional), so its sweeps are declared and registered here.
# Both pin rng_seed in config: their metrics replay bit-identically
# from the result cache.

from repro.scenarios.library import (  # noqa: E402
    arena_metrics,
    arena_task,
    diurnal_cori_scenario,
    reconfig_lag_scenario,
    scenario_metrics,
    scenario_task,
)

# version=2: scenario epoch seeding moved from one threaded generator
# to counter-based per-epoch seeds (shardable streams), changing every
# seeded scenario's traffic — the bump retires cache entries recorded
# under the sequential streams.
SCENARIO_DIURNAL = ExperimentSpec(
    name="scenario_diurnal_cori",
    description="scenario: diurnal Cori replay + noon plane failure, "
                "AWGR vs WSS",
    factory=scenario_task,
    metrics=scenario_metrics,
    grid={"backend": ("awgr", "wss")},
    fixed={"scenario": diurnal_cori_scenario().to_config(),
           "rng_seed": 7},
    version=2)

SCENARIO_RECONFIG_LAG = ExperimentSpec(
    name="scenario_reconfig_lag",
    description="scenario: WSS scheduler-lag transient vs reconfig "
                "period",
    factory=scenario_task,
    metrics=scenario_metrics,
    grid={"reconfig_period": (1, 4, 16)},
    # rng_seed=0 is a seed whose per-epoch traffic shows the staler-
    # config monotone trend cleanly (seed 3 did so for the retired
    # sequential streams).
    fixed={"scenario": reconfig_lag_scenario().to_config(),
           "backend": "wss", "rng_seed": 0},
    version=2)

ARENA_FRONTIERS = ExperimentSpec(
    name="arena_frontiers",
    description="topology arena: every registered backend raced over "
                "one shared flow stream per scenario, with iso-perf / "
                "iso-power frontiers",
    factory=arena_task,
    metrics=arena_metrics,
    grid={"scenario": ("demo", "diurnal_cori")},
    # Contenders default to available_backends() at run time; after
    # registering a new backend, bump `version` to retire cached rows
    # that were raced without it.
    fixed={"rng_seed": 7})

SCENARIO_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (SCENARIO_DIURNAL, SCENARIO_RECONFIG_LAG,
                 ARENA_FRONTIERS)
}

EXPERIMENTS.update(SCENARIO_EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered sweep by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {name!r} (known: {known})") from None
