"""JSON result cache for sweep tasks.

One file per task, keyed by the stable hash of (spec name, version,
config): re-running an identical sweep is pure cache reads, while any
config / version change misses naturally. Files are human-readable
JSON so cached sweeps double as raw experiment records.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.experiments.spec import SweepTask

#: Bump to invalidate every cache entry on disk (serializer changes).
CACHE_FORMAT = 1


class SweepJSONEncoder(json.JSONEncoder):
    """JSON encoder that flattens numpy scalars/arrays to plain types."""

    def default(self, o: Any) -> Any:
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, (set, frozenset)):
            return sorted(o)
        return super().default(o)


def encode_metrics(metrics: dict) -> str:
    """Serialize a metrics dict exactly as the cache stores it.

    Key order is preserved so cached sweep rows render with the same
    column order as freshly computed ones.
    """
    return json.dumps(metrics, cls=SweepJSONEncoder, indent=1)


def decode_metrics(payload: str) -> dict:
    """Inverse of :func:`encode_metrics`."""
    return json.loads(payload)


class ResultCache:
    """Directory-backed task-result cache.

    Parameters
    ----------
    root:
        Cache directory (created if missing).
    max_entries:
        Optional size cap. When set, storing a new entry evicts the
        least-recently-used files (by mtime — loads touch their entry)
        until the cap holds. ``None`` (default) means unbounded.
    """

    def __init__(self, root: str | os.PathLike,
                 max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.root = Path(root)
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, task: SweepTask) -> Path:
        """File that does / would hold this task's result."""
        return (self.root
                / f"{task.spec_name}-{task.config_hash[:20]}.json")

    def load(self, task: SweepTask) -> dict | None:
        """Return cached metrics for the task, or None on miss.

        Entries written by an older cache format, a different spec
        version, a different config (hash collision guard), or a
        different derived seed are treated as misses. The version
        check is explicit — the truncated path hash usually separates
        versions already, but the stored field is the guarantee.
        """
        path = self.path_for(task)
        try:
            entry = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if (entry.get("format") != CACHE_FORMAT
                or entry.get("version") != task.version
                or entry.get("config") != json.loads(
                    encode_metrics(dict(task.config)))
                or entry.get("seed") != task.seed):
            return None
        try:
            os.utime(path)  # mark recently used for LRU eviction
        except OSError:
            pass
        return entry["metrics"]

    def store(self, task: SweepTask, metrics: dict) -> Path:
        """Persist one task's metrics (atomic rename)."""
        entry = {
            "format": CACHE_FORMAT,
            "spec": task.spec_name,
            "version": task.version,
            "config": task.config,
            "seed": task.seed,
            "metrics": metrics,
        }
        payload = json.dumps(entry, cls=SweepJSONEncoder, indent=1)
        path = self.path_for(task)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        self._evict()
        return path

    def _evict(self) -> None:
        """Drop least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return
        entries = sorted(self.root.glob("*.json"),
                         key=lambda p: p.stat().st_mtime_ns)
        for path in entries[:max(0, len(entries) - self.max_entries)]:
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed.

        Tolerates entries another process removes concurrently (an
        eviction or a clear racing this one), matching :meth:`_evict`.
        """
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
