"""Declarative experiment specifications for parameter sweeps.

An :class:`ExperimentSpec` names a parameter grid, a *factory* that
runs one configuration to a result object, and a *metric extractor*
that reduces the result to a JSON-serializable dict. The spec expands
its grid into :class:`SweepTask` instances, each carrying a
deterministic RNG seed derived from a stable hash of (spec identity,
task config) — so the same spec always yields the same seeds, across
processes and Python invocations, without any global state.

Factories and extractors must be *module-level* callables: tasks fan
out over ``ProcessPoolExecutor`` and therefore have to pickle.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence


def _canonical(value: Any) -> Any:
    """Reduce a config value to a canonical JSON-stable form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    raise TypeError(f"config value {value!r} is not JSON-stable")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """Hex digest of an object's canonical JSON; stable across runs
    (unlike ``hash()``, which Python salts per process)."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def derive_seed(spec_name: str, version: int, base_seed: int,
                config: Mapping[str, Any]) -> int:
    """Deterministic 63-bit RNG seed for one task of one spec."""
    payload = {"spec": spec_name, "version": version,
               "base_seed": base_seed, "config": config}
    return int(stable_hash(payload)[:16], 16) & (2**63 - 1)


@dataclass(frozen=True)
class SweepTask:
    """One grid point: everything a worker process needs to run it."""

    spec_name: str
    version: int
    index: int
    config: dict[str, Any]
    seed: int
    factory: Callable[[dict, int], Any]
    metrics: Callable[[Any], dict]

    @property
    def config_hash(self) -> str:
        """Stable hash of the task's config (cache key component)."""
        return stable_hash({"spec": self.spec_name,
                            "version": self.version,
                            "config": self.config})

    def execute(self) -> dict[str, Any]:
        """Run factory + metric extraction for this configuration."""
        result = self.factory(self.config, self.seed)
        return self.metrics(result)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, declarative parameter sweep.

    Parameters
    ----------
    name:
        Registry / cache namespace for the sweep.
    factory:
        Module-level callable ``(config, seed) -> result`` running one
        configuration end-to-end.
    metrics:
        Module-level callable ``result -> dict`` reducing the result
        to JSON-serializable metrics (e.g. ``SimulationReport.as_dict``
        wrapped in a function).
    grid:
        Mapping of parameter name to the sequence of values to sweep.
        The cartesian product, in declaration order, is the task list.
    fixed:
        Parameters shared by every task (merged under each grid point;
        a grid key overrides a fixed key of the same name).
    base_seed:
        Stirred into every task's derived seed: bump to resample.
        Only affects factories that consume their ``seed`` argument —
        specs that pin RNG inputs in the config (the registered paper
        replays in :mod:`repro.experiments.library`) stay bit-
        identical and merely recompute under a new cache identity.
    version:
        Cache-busting version; bump when factory semantics change.
    description:
        One-line summary shown by ``repro sweep --list``.
    """

    name: str
    factory: Callable[[dict, int], Any]
    metrics: Callable[[Any], dict]
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    base_seed: int = 0
    version: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        for param, values in self.grid.items():
            if not isinstance(values, Sequence) or isinstance(values, str):
                raise TypeError(
                    f"grid[{param!r}] must be a sequence of values")
            if len(values) == 0:
                raise ValueError(f"grid[{param!r}] is empty")

    def configs(self) -> list[dict[str, Any]]:
        """Expand fixed params x grid into per-task config dicts."""
        if not self.grid:
            return [dict(self.fixed)]
        names = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[n] for n in names)):
            config = dict(self.fixed)
            config.update(zip(names, combo))
            out.append(config)
        return out

    def repeated(self, repeats: int, axis: str = "repeat"
                 ) -> "ExperimentSpec":
        """Fan the spec out across ``repeats`` seeded replications.

        Adds a ``repeat`` grid axis with values ``0..repeats-1``; each
        value is stirred into the task's derived seed (equivalent to
        running the sweep at ``base_seed + i``), so factories that
        consume their ``seed`` argument resample per repeat while the
        rest of the config stays fixed. Aggregate the resulting rows
        with :func:`repro.analysis.report.aggregate_ci` /
        :func:`repro.analysis.stats.mean_ci`.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if axis in self.grid or axis in self.fixed:
            raise ValueError(f"axis {axis!r} already used by the spec")
        grid = dict(self.grid)
        grid[axis] = tuple(range(repeats))
        return replace(self, grid=grid)

    def tasks(self) -> list[SweepTask]:
        """Materialize the sweep's task list with derived seeds."""
        return [SweepTask(spec_name=self.name, version=self.version,
                          index=i, config=config,
                          seed=derive_seed(self.name, self.version,
                                           self.base_seed, config),
                          factory=self.factory, metrics=self.metrics)
                for i, config in enumerate(self.configs())]

    def __len__(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n
