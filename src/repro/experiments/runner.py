"""Parallel sweep execution over a process pool.

``SweepRunner`` takes an :class:`~repro.experiments.spec.ExperimentSpec`,
serves whatever it can from the :class:`~repro.experiments.cache.ResultCache`,
and fans the remaining tasks out over ``concurrent.futures.
ProcessPoolExecutor``. Results come back in grid order regardless of
completion order, so a sweep's output is deterministic whether it ran
serial, parallel, or fully cached.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache
from repro.experiments.spec import ExperimentSpec, SweepTask


def _execute(task: SweepTask) -> tuple[dict, float]:
    """Worker entry point (module-level so it pickles).

    Times the task in the worker itself so ``duration_s`` is the
    task's own runtime even when the pool runs tasks concurrently.
    """
    t0 = time.perf_counter()
    metrics = task.execute()
    return metrics, time.perf_counter() - t0


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one grid point."""

    config: dict
    seed: int
    metrics: dict
    cached: bool
    duration_s: float

    def row(self) -> dict:
        """Config and metrics merged into one flat report row."""
        return {**self.config, **self.metrics}


@dataclass
class SweepResult:
    """All task results of one sweep, in grid order."""

    spec_name: str
    results: list[TaskResult] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0

    @property
    def n_cached(self) -> int:
        """How many tasks were served from the result cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def n_executed(self) -> int:
        """How many tasks actually simulated."""
        return len(self.results) - self.n_cached

    def rows(self) -> list[dict]:
        """Flat config+metrics rows (report/table input)."""
        return [r.row() for r in self.results]

    def summary(self) -> str:
        """One-line human summary of the sweep run."""
        return (f"{self.spec_name}: {len(self.results)} tasks "
                f"({self.n_cached} cached, {self.n_executed} run) "
                f"on {self.workers} worker(s) in {self.wall_s:.2f}s")


def default_workers() -> int:
    """Process-pool width used when the caller does not choose one."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


@dataclass
class SweepRunner:
    """Runs experiment sweeps, optionally cached and parallel.

    Parameters
    ----------
    workers:
        Process-pool width. ``1`` (the default) executes inline in
        this process — right for unit tests and pytest-benchmark
        timing; pass >1 (or :func:`default_workers`) to fan out.
    cache:
        Result cache; ``None`` disables caching entirely.
    """

    workers: int = 1
    cache: ResultCache | None = None

    def run(self, spec: ExperimentSpec, force: bool = False
            ) -> SweepResult:
        """Execute (or replay) every task of ``spec``.

        With ``force`` the cache is ignored for reads but still
        written, refreshing stale entries in place.
        """
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        t0 = time.perf_counter()
        tasks = spec.tasks()
        slots: list[TaskResult | None] = [None] * len(tasks)
        pending: list[SweepTask] = []
        for task in tasks:
            hit = None
            if self.cache is not None and not force:
                hit = self.cache.load(task)
            if hit is not None:
                slots[task.index] = TaskResult(
                    config=task.config, seed=task.seed, metrics=hit,
                    cached=True, duration_s=0.0)
            else:
                pending.append(task)

        for task, metrics, duration in self._execute_all(pending):
            if self.cache is not None:
                self.cache.store(task, metrics)
            slots[task.index] = TaskResult(
                config=task.config, seed=task.seed, metrics=metrics,
                cached=False, duration_s=duration)

        return SweepResult(
            spec_name=spec.name,
            results=[r for r in slots if r is not None],
            workers=self.workers,
            wall_s=time.perf_counter() - t0)

    def _execute_all(self, pending: list[SweepTask]
                     ) -> list[tuple[SweepTask, dict, float]]:
        if not pending:
            return []
        if self.workers == 1 or len(pending) == 1:
            timed = [_execute(task) for task in pending]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                timed = list(pool.map(_execute, pending))
        return [(task, metrics, duration)
                for task, (metrics, duration) in zip(pending, timed)]
