"""Crash-tolerant sweep execution over pluggable executors.

``SweepRunner`` takes an :class:`~repro.experiments.spec.ExperimentSpec`,
serves whatever it can from the :class:`~repro.experiments.cache.ResultCache`,
and hands the remaining tasks to a
:class:`~repro.experiments.executors.SweepExecutor` (inline, process
pool, or a work-stealing shard of a multi-machine run). Outcomes
stream back in completion order and are committed to the cache one by
one, so a failing task — or a dying worker process — costs exactly
that task: everything already completed is cached, the failure is
recorded on its :class:`TaskResult`, and the sweep finishes. Results
are reported in grid order regardless of completion order, so a
sweep's output is deterministic whether it ran serial, parallel,
sharded, or fully cached.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache
from repro.experiments.executors import (
    SweepExecutor,
    TaskOutcome,
    make_executor,
)
from repro.experiments.spec import ExperimentSpec


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one grid point."""

    config: dict
    seed: int
    metrics: dict
    cached: bool
    duration_s: float
    #: Formatted traceback when the task failed; ``None`` on success.
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Did this task produce metrics?"""
        return self.error is None

    def row(self) -> dict:
        """Config and metrics merged into one flat report row."""
        return {**self.config, **self.metrics}


@dataclass
class SweepResult:
    """All task results of one sweep, in grid order."""

    spec_name: str
    results: list[TaskResult] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0
    #: Grid points the executor never produced — another shard owns
    #: them and work-stealing was off (or had no cache to check).
    skipped: list[dict] = field(default_factory=list)

    @property
    def n_cached(self) -> int:
        """How many tasks were served from the result cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def n_failed(self) -> int:
        """How many tasks raised instead of producing metrics."""
        return sum(1 for r in self.results if not r.ok)

    @property
    def n_executed(self) -> int:
        """How many tasks actually simulated (including failures)."""
        return len(self.results) - self.n_cached

    @property
    def n_skipped(self) -> int:
        """How many grid points were left to other shards."""
        return len(self.skipped)

    @property
    def complete(self) -> bool:
        """Did every grid point produce a usable result here?"""
        return not self.skipped and self.n_failed == 0

    def failures(self) -> list[TaskResult]:
        """The failed tasks, in grid order, with their tracebacks."""
        return [r for r in self.results if not r.ok]

    def rows(self) -> list[dict]:
        """Flat config+metrics rows of the *successful* tasks
        (report/table input; failed tasks have no metrics)."""
        return [r.row() for r in self.results if r.ok]

    def raise_on_failure(self) -> "SweepResult":
        """Raise ``RuntimeError`` if any task failed; else return self
        (for callers that want the historical abort-on-error shape)."""
        failed = self.failures()
        if failed:
            raise RuntimeError(
                f"{self.spec_name}: {len(failed)} task(s) failed; "
                f"first: {failed[0].config} ->\n{failed[0].error}")
        return self

    def summary(self) -> str:
        """One-line human summary of the sweep run."""
        failed = f", {self.n_failed} FAILED" if self.n_failed else ""
        skipped = (f", {self.n_skipped} left to other shards"
                   if self.skipped else "")
        return (f"{self.spec_name}: {len(self.results)} tasks "
                f"({self.n_cached} cached, {self.n_executed} run"
                f"{failed}{skipped}) on {self.workers} worker(s) "
                f"in {self.wall_s:.2f}s")


def default_workers() -> int:
    """Process-pool width used when the caller does not choose one."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


@dataclass
class SweepRunner:
    """Runs experiment sweeps, optionally cached and parallel.

    Parameters
    ----------
    workers:
        Process-pool width. ``1`` (the default) executes inline in
        this process — right for unit tests and pytest-benchmark
        timing; pass >1 (or :func:`default_workers`) to fan out.
    cache:
        Result cache; ``None`` disables caching entirely. Results are
        stored *as each task completes*, never buffered — an aborted
        or partially failed sweep keeps everything it finished.
    executor:
        ``"auto"`` (inline for one worker, process pool otherwise),
        an executor name from
        :data:`~repro.experiments.executors.EXECUTORS`, or any object
        implementing :class:`~repro.experiments.executors.SweepExecutor`.
    shard_index, shard_count:
        With ``executor="shard"``, this process's stable-hash slice of
        the grid. Point N processes (or machines) at the same spec and
        cache directory with indices ``0..N-1`` and they converge on
        the full grid without coordination (see
        :class:`~repro.experiments.executors.ShardExecutor`).
    """

    workers: int = 1
    cache: ResultCache | None = None
    executor: str | SweepExecutor = "auto"
    shard_index: int | None = None
    shard_count: int | None = None

    def run(self, spec: ExperimentSpec, force: bool = False
            ) -> SweepResult:
        """Execute (or replay) every task of ``spec``.

        With ``force`` the cache is ignored for reads but still
        written, refreshing stale entries in place. Failed tasks are
        recorded on their :class:`TaskResult` (``error`` holds the
        traceback) instead of aborting the sweep; call
        :meth:`SweepResult.raise_on_failure` to escalate.
        """
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        t0 = time.perf_counter()
        tasks = spec.tasks()
        slots: list[TaskResult | None] = [None] * len(tasks)
        pending = []
        for task in tasks:
            hit = None
            if self.cache is not None and not force:
                hit = self.cache.load(task)
            if hit is not None:
                slots[task.index] = TaskResult(
                    config=task.config, seed=task.seed, metrics=hit,
                    cached=True, duration_s=0.0)
            else:
                pending.append(task)

        for task, outcome in self._executor(force).run(pending):
            slots[task.index] = self._commit(task, outcome)

        return SweepResult(
            spec_name=spec.name,
            results=[r for r in slots if r is not None],
            workers=self.workers,
            wall_s=time.perf_counter() - t0,
            skipped=[t.config for t in pending
                     if slots[t.index] is None])

    def _executor(self, force: bool = False) -> SweepExecutor:
        if isinstance(self.executor, str):
            return make_executor(self.executor, workers=self.workers,
                                 cache=self.cache,
                                 shard_index=self.shard_index,
                                 shard_count=self.shard_count,
                                 force=force)
        return self.executor

    def _commit(self, task, outcome: TaskOutcome) -> TaskResult:
        """Turn one streamed outcome into a TaskResult, caching
        successful metrics immediately."""
        if outcome.ok and not outcome.cached and self.cache is not None:
            self.cache.store(task, outcome.metrics)
        return TaskResult(
            config=task.config, seed=task.seed,
            metrics=outcome.metrics if outcome.ok else {},
            cached=outcome.cached,
            duration_s=outcome.duration_s,
            error=outcome.error)
