"""Pluggable sweep executors: inline, process-pool, and sharded.

The :class:`~repro.experiments.runner.SweepRunner` delegates the
actual execution of pending tasks to an *executor* — anything with
``run(tasks) -> iterator of (task, TaskOutcome)``. Executors stream
outcomes in completion order (not grid order) so the runner can commit
each result to the cache the moment it exists: a crash in task N never
discards tasks 1..N-1.

Three executors cover the deployment spectrum:

* :class:`InlineExecutor` — tasks run in this process, one by one.
  Unit tests, pytest-benchmark timing, debugging.
* :class:`ProcessPoolSweepExecutor` — ``concurrent.futures``
  fan-out with ``as_completed`` streaming. Exceptions raised *inside*
  a task are caught in the worker and come back as failed outcomes;
  a worker process dying outright (segfault, ``os._exit``) surfaces
  as a ``BrokenProcessPool`` failure on the affected tasks only —
  everything that completed before the crash has already streamed.
* :class:`ShardExecutor` — partitions the task list by the stable
  config hash so N machines pointed at the same spec each own a
  disjoint slice. Shards share nothing but a cache directory: after
  finishing its own slice a shard can *steal* foreign tasks that no
  other shard has cached yet, so the grid converges even when some
  machines are slow or never show up — without any coordination
  service.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.experiments.spec import SweepTask

#: Names accepted by :func:`make_executor`.
EXECUTORS = ("auto", "inline", "process", "shard")


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task: metrics on success, error text on
    failure, and where the result came from."""

    metrics: dict | None
    duration_s: float = 0.0
    error: str | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        """Did the task produce metrics?"""
        return self.error is None


def run_task(task: SweepTask) -> TaskOutcome:
    """Execute one task, converting any exception into a failed
    outcome (module-level so it pickles into worker processes).

    Times the task where it runs, so ``duration_s`` is the task's own
    runtime even when a pool runs tasks concurrently.
    """
    t0 = time.perf_counter()
    try:
        metrics = task.execute()
    except Exception:
        return TaskOutcome(metrics=None,
                           duration_s=time.perf_counter() - t0,
                           error=traceback.format_exc())
    return TaskOutcome(metrics=metrics,
                       duration_s=time.perf_counter() - t0)


@runtime_checkable
class SweepExecutor(Protocol):
    """Anything that can drive a batch of sweep tasks to outcomes."""

    def run(self, tasks: Iterable[SweepTask]
            ) -> Iterator[tuple[SweepTask, TaskOutcome]]:
        """Yield ``(task, outcome)`` pairs as tasks complete."""
        ...


@dataclass
class InlineExecutor:
    """Runs every task in the calling process, streaming outcomes."""

    def run(self, tasks: Iterable[SweepTask]
            ) -> Iterator[tuple[SweepTask, TaskOutcome]]:
        for task in tasks:
            yield task, run_task(task)


@dataclass
class ProcessPoolSweepExecutor:
    """Fans tasks out over worker processes, streaming completions.

    A task that raises is caught *inside* the worker by
    :func:`run_task`; only the death of the worker process itself
    (``BrokenProcessPool``) reaches the future, and then only the
    tasks still in flight fail — completed outcomes have already been
    yielded to the caller.
    """

    workers: int

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def run(self, tasks: Iterable[SweepTask]
            ) -> Iterator[tuple[SweepTask, TaskOutcome]]:
        tasks = list(tasks)
        if not tasks:
            return
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(run_task, task): task
                       for task in tasks}
            for future in as_completed(futures):
                task = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:
                    # The worker process died (not a task exception —
                    # those are captured by run_task): fail this task,
                    # keep streaming the rest.
                    outcome = TaskOutcome(
                        metrics=None,
                        error=f"{type(exc).__name__}: {exc}")
                yield task, outcome


def shard_of(task: SweepTask, shard_count: int) -> int:
    """Which shard owns a task: stable across machines and runs."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    return int(task.config_hash[:16], 16) % shard_count


@dataclass
class ShardExecutor:
    """Owns the ``shard_index``-th stable-hash slice of a task list.

    Parameters
    ----------
    inner:
        Executor that actually runs this shard's owned tasks.
    shard_index, shard_count:
        This machine's slice of the grid (``0 <= index < count``).
    cache:
        The *shared* result cache, used only to decide whether a
        foreign task still needs stealing. ``None`` disables stealing
        implicitly (there is no way to see other shards' progress).
    steal:
        After the owned slice, pick up foreign tasks that are not in
        the shared cache yet (one at a time, re-checking the cache
        before each, so duplicated work is bounded by one task per
        straggler). With ``steal`` on, every shard eventually drives
        the whole grid to completion on its own.
    force:
        Honor a force-refresh run: stolen foreign tasks are
        recomputed without consulting the cache, matching the
        runner's "cache is ignored for reads" contract.
    """

    inner: SweepExecutor
    shard_index: int
    shard_count: int
    cache: object | None = None
    steal: bool = True
    force: bool = False

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError("shard_index must be in [0, shard_count)")

    def run(self, tasks: Iterable[SweepTask]
            ) -> Iterator[tuple[SweepTask, TaskOutcome]]:
        tasks = list(tasks)
        owned = [t for t in tasks
                 if shard_of(t, self.shard_count) == self.shard_index]
        foreign = [t for t in tasks
                   if shard_of(t, self.shard_count) != self.shard_index]
        yield from self.inner.run(owned)
        if not self.steal or self.cache is None:
            return
        for task in foreign:
            hit = None if self.force else self.cache.load(task)
            if hit is not None:  # another shard got there first
                yield task, TaskOutcome(metrics=hit, cached=True)
                continue
            yield task, run_task(task)


def make_executor(name: str, workers: int = 1, cache: object | None = None,
                  shard_index: int | None = None,
                  shard_count: int | None = None,
                  force: bool = False) -> SweepExecutor:
    """Build an executor by name.

    ``"auto"`` picks inline for ``workers == 1`` and a process pool
    otherwise (the historical SweepRunner behavior). ``"shard"``
    wraps the auto choice in a :class:`ShardExecutor` and requires
    ``shard_index`` / ``shard_count``.
    """
    if name not in EXECUTORS:
        raise KeyError(f"unknown executor {name!r} (known: {EXECUTORS})")
    if name == "inline":
        return InlineExecutor()
    if name == "process":
        return ProcessPoolSweepExecutor(workers=max(1, workers))
    inner: SweepExecutor = (InlineExecutor() if workers == 1
                            else ProcessPoolSweepExecutor(workers=workers))
    if name == "auto":
        return inner
    if shard_index is None or shard_count is None:
        raise ValueError("shard executor needs shard_index and "
                         "shard_count")
    return ShardExecutor(inner=inner, shard_index=shard_index,
                         shard_count=shard_count, cache=cache,
                         force=force)
