"""Declarative, cached, parallel experiment sweeps.

The chassis behind ``repro sweep`` and the ported benchmarks: specs
declare a parameter grid, the runner fans grid points out over worker
processes with deterministic per-task seeds, and a JSON cache makes
re-runs instant. See :mod:`repro.experiments.library` for the
registered sweeps.
"""

from repro.experiments.cache import ResultCache
from repro.experiments.executors import (
    EXECUTORS,
    InlineExecutor,
    ProcessPoolSweepExecutor,
    ShardExecutor,
    TaskOutcome,
    make_executor,
    shard_of,
)
from repro.experiments.library import EXPERIMENTS, get_experiment
from repro.experiments.runner import (
    SweepResult,
    SweepRunner,
    TaskResult,
    default_workers,
)
from repro.experiments.spec import (
    ExperimentSpec,
    SweepTask,
    canonical_json,
    derive_seed,
    stable_hash,
)

__all__ = [
    "EXECUTORS",
    "EXPERIMENTS",
    "ExperimentSpec",
    "InlineExecutor",
    "ProcessPoolSweepExecutor",
    "ResultCache",
    "ShardExecutor",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "TaskOutcome",
    "TaskResult",
    "canonical_json",
    "default_workers",
    "derive_seed",
    "get_experiment",
    "make_executor",
    "shard_of",
    "stable_hash",
]
