"""Graph views of the fabric plans (networkx).

These are convenience builders for analysis and visualization: the
AWGR plan becomes a weighted complete graph whose edge weights are the
number of direct wavelengths between MCM pairs; the WSS plan becomes a
bipartite MCM-switch graph. Connectivity invariants proved in §V-B
(every pair >= 5 wavelengths / >= 3 switch paths) become simple graph
assertions, which the Fig. 5 bench and the property tests exercise.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.rack.design import AWGRFabricPlan, WSSFabricPlan


def awgr_connectivity_graph(plan: AWGRFabricPlan,
                            sample: int | None = None) -> nx.Graph:
    """Complete MCM graph weighted by direct wavelength count.

    Parameters
    ----------
    plan:
        AWGR fabric plan.
    sample:
        When given, only the first ``sample`` MCMs are included (the
        full 350-node complete graph has ~61k edges; fine, but samples
        keep interactive use fast).
    """
    n = plan.n_mcms if sample is None else min(sample, plan.n_mcms)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for src in range(n):
        for dst in range(src + 1, n):
            wavelengths = plan.direct_wavelengths(src, dst)
            graph.add_edge(src, dst,
                           wavelengths=wavelengths,
                           gbps=wavelengths * plan.awgr.gbps_per_wavelength)
    return graph


def wss_connectivity_graph(plan: WSSFabricPlan) -> nx.Graph:
    """Bipartite MCM <-> switch attachment graph.

    MCM nodes are integers; switch nodes are strings ``"sw<i>"``.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(plan.n_mcms), bipartite="mcm")
    graph.add_nodes_from((f"sw{s}" for s in range(plan.n_switches)),
                         bipartite="switch")
    for s in range(plan.n_switches):
        for port, mcm in enumerate(plan.attachment[s]):
            if mcm >= 0:
                graph.add_edge(int(mcm), f"sw{s}", port=port)
    return graph


def min_pair_weight(graph: nx.Graph, attribute: str = "wavelengths") -> int:
    """Minimum edge weight over all pairs present in the graph."""
    values = [data[attribute] for _, _, data in graph.edges(data=True)]
    if not values:
        raise ValueError("graph has no edges")
    return min(values)


def wss_pair_path_counts(plan: WSSFabricPlan,
                         sample: int | None = None) -> np.ndarray:
    """(n, n) matrix of common-switch counts between MCM pairs."""
    n = plan.n_mcms if sample is None else min(sample, plan.n_mcms)
    counts = np.zeros((n, n), dtype=int)
    for src in range(n):
        for dst in range(src + 1, n):
            c = plan.direct_paths(src, dst)
            counts[src, dst] = counts[dst, src] = c
    return counts
