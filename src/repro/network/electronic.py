"""Electronic-switch comparator models (paper §VI-D).

The paper compares its photonic fabric against the best available
electronic options for full intra-rack connectivity:

* **PCIe Gen5 switches**: ~10 ns per hop but only ~100 lanes, so a
  rack-scale fabric needs a two-level tree whose top level is itself a
  two-hop subnetwork — four hops total, i.e. +40 ns of switching on top
  of the 35 ns FEC+propagation budget => 85 ns added memory latency.
* **Anton 3 network**: ~90 ns for a single hop.
* **Rosetta (Slingshot) / InfiniBand**: >= ~200 ns per hop.
* **CXL small-group prototypes**: >= 142 ns measured (Pond).

All are optimistic-for-electronics numbers (one lane per endpoint,
no congestion), which is the comparison the paper wants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ElectronicSwitch:
    """One electronic switching technology.

    Parameters
    ----------
    name:
        Identifier.
    hop_latency_ns:
        Per-hop traversal latency.
    lanes:
        Ports/lanes per switch (bounds the tree fan-out).
    lane_gbps:
        Per-lane signaling bandwidth.
    """

    name: str
    hop_latency_ns: float
    lanes: int
    lane_gbps: float
    reference: str = ""

    def __post_init__(self) -> None:
        if self.hop_latency_ns < 0:
            raise ValueError("hop latency must be >= 0")
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")
        if self.lane_gbps <= 0:
            raise ValueError("lane bandwidth must be positive")

    def hops_for_endpoints(self, endpoints: int) -> int:
        """Hops of a minimal tree connecting ``endpoints`` with this switch.

        A single switch handles up to ``lanes`` endpoints in one hop.
        Beyond that a two-level tree is needed: one hop into the source
        leaf switch, a two-hop internal top-level subnetwork, and the
        destination leaf switch. The paper describes this as a
        "four-hop" tree but charges 50 ns of switching on top of the
        shared 35 ns budget (85 ns total at 10 ns/hop), i.e. five
        traversals; we return 5 so the headline 85 ns reproduces.
        """
        if endpoints <= 0:
            raise ValueError("endpoints must be positive")
        if endpoints <= self.lanes:
            return 1
        return 5

    def added_latency_ns(self, endpoints: int, base_overhead_ns: float = 35.0,
                         ) -> float:
        """Total added memory latency for a disaggregated rack.

        ``base_overhead_ns`` is the FEC + propagation budget shared
        with the photonic design (§VI-D: "these four hops will be in
        addition to the 35 ns we previously evaluated").
        """
        return base_overhead_ns + self.hops_for_endpoints(endpoints) \
            * self.hop_latency_ns


#: Catalog of §VI-D comparators.
ELECTRONIC_CATALOG: dict[str, ElectronicSwitch] = {
    "pcie-gen5": ElectronicSwitch("pcie-gen5", hop_latency_ns=10.0,
                                  lanes=100, lane_gbps=32.0,
                                  reference="[129]"),
    "anton3": ElectronicSwitch("anton3", hop_latency_ns=90.0,
                               lanes=64, lane_gbps=29.0,
                               reference="[130]"),
    "rosetta": ElectronicSwitch("rosetta", hop_latency_ns=200.0,
                                lanes=64, lane_gbps=200.0,
                                reference="[127]"),
    "infiniband": ElectronicSwitch("infiniband", hop_latency_ns=200.0,
                                   lanes=40, lane_gbps=200.0,
                                   reference="[128]"),
    "cxl-pond": ElectronicSwitch("cxl-pond", hop_latency_ns=142.0,
                                 lanes=32, lane_gbps=64.0,
                                 reference="[26]"),
}


def electronic_disaggregation_latency_ns(technology: str = "pcie-gen5",
                                         endpoints: int = 350,
                                         base_overhead_ns: float = 35.0,
                                         ) -> float:
    """Added memory latency using an electronic fabric (85 ns default).

    The paper's headline comparison uses the *best* electronic case —
    a four-hop PCIe Gen5 tree or a one-hop Anton 3 — both of which
    land at ~85-90 ns added latency vs. 35 ns for photonics.
    """
    switch = ELECTRONIC_CATALOG[technology]
    return switch.added_latency_ns(endpoints, base_overhead_ns)


def best_electronic_latency_ns(endpoints: int = 350,
                               base_overhead_ns: float = 35.0) -> float:
    """Minimum added latency across the comparator catalog."""
    return min(sw.added_latency_ns(endpoints, base_overhead_ns)
               for sw in ELECTRONIC_CATALOG.values())
