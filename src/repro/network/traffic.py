"""Traffic generators for the network simulator.

Patterns mirror the communication classes the paper's bandwidth
analysis reasons about (§VI-A): CPU <-> DDR4 and NIC <-> memory flows
sized from production profiles, GPU <-> HBM streams at near-line-rate,
and GPU <-> GPU collective traffic that replaces NVLink.

Two representations of the same traffic:

* :class:`Flow` — one Python object per flow. The readable scalar
  form, used by the reference (oracle) admission paths and anywhere
  a handful of flows is inspected by hand.
* :class:`FlowBatch` — structure-of-arrays (``src``/``dst``/``gbps``
  numpy arrays plus an interned kind table). The hot-path form: the
  generators sample it directly with vectorized draws, and the
  batched admission paths consume it without materializing objects.

The two are bit-exact views of each other: every ``*_batch`` generator
consumes the RNG in exactly the order of the historical per-flow loop
(``rng.integers(0, high_array)`` with a broadcast bound array draws
the same Lemire-bounded stream as the equivalent sequence of scalar
calls, including the 32-bit half-word buffer), so
``uniform_traffic(...)`` == ``uniform_batch(...).to_flows()`` for any
seed, and both leave the generator in the same state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Accepted wherever a generator is needed: an existing ``Generator``,
#: a plain int seed (JSON-serializable, so sweep/scenario configs can
#: carry it through the result cache's stable hashing), or ``None``
#: for the historical default of ``default_rng(0)``.
SeedLike = np.random.Generator | int | None


def as_generator(rng: SeedLike) -> np.random.Generator:
    """Coerce a seed-like value to a ``numpy`` ``Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(0 if rng is None else rng)


@dataclass(frozen=True)
class Flow:
    """One steady flow between two endpoints.

    Parameters
    ----------
    src, dst:
        Endpoint indices in the simulated fabric.
    gbps:
        Offered load.
    kind:
        Free-form label ("cpu-mem", "gpu-hbm", ...), used in reports.
    """

    src: int
    dst: int
    gbps: float
    kind: str = "generic"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("flow endpoints must differ")
        if self.gbps <= 0:
            raise ValueError("flow bandwidth must be positive")

    def slots(self, gbps_per_slot: float) -> int:
        """Sub-slots this flow needs at a given slot granularity."""
        return max(1, int(np.ceil(self.gbps / gbps_per_slot)))

    def to_dict(self) -> dict:
        """JSON-stable form (simulator snapshots of in-flight flows)."""
        return {"src": self.src, "dst": self.dst, "gbps": self.gbps,
                "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: dict) -> "Flow":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(src=int(payload["src"]), dst=int(payload["dst"]),
                   gbps=float(payload["gbps"]),
                   kind=str(payload.get("kind", "generic")))


@dataclass
class FlowBatch:
    """A set of flows as structure-of-arrays.

    ``src``/``dst`` are int64 endpoint arrays, ``gbps`` the float64
    offered loads, and each flow's kind is ``kinds[kind_codes[i]]`` —
    kind strings are interned once per batch instead of hung off every
    flow. All four arrays have one entry per flow (``kinds`` is the
    intern table, typically length 1 per generator).

    Batches are the native currency of the vectorized pipeline:
    generators emit them, ``offer_batch``/backend ``step`` consume
    them, and :meth:`to_dict`/:meth:`from_dict` give the JSON-stable
    form snapshots carry. :meth:`to_flows` (or iteration) is the
    compatibility view for scalar-path consumers.
    """

    src: np.ndarray
    dst: np.ndarray
    gbps: np.ndarray
    kinds: list[str] = field(default_factory=lambda: ["generic"])
    kind_codes: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        self.gbps = np.ascontiguousarray(self.gbps, dtype=np.float64)
        if self.kind_codes is None:
            self.kind_codes = np.zeros(len(self.src), dtype=np.int64)
        self.kind_codes = np.ascontiguousarray(self.kind_codes,
                                               dtype=np.int64)
        n = len(self.src)
        if not (len(self.dst) == len(self.gbps)
                == len(self.kind_codes) == n):
            raise ValueError("batch arrays must share one length")
        if n and np.any(self.src == self.dst):
            raise ValueError("flow endpoints must differ")
        if n and np.any(self.gbps <= 0):
            raise ValueError("flow bandwidth must be positive")
        if not self.kinds:
            raise ValueError("batch needs a non-empty kind table")
        if n and (int(self.kind_codes.min()) < 0
                  or int(self.kind_codes.max()) >= len(self.kinds)):
            raise ValueError("kind code outside the intern table")

    def __len__(self) -> int:
        return len(self.src)

    def __iter__(self):
        return iter(self.to_flows())

    def kind_of(self, i: int) -> str:
        """Kind label of flow ``i``."""
        return self.kinds[int(self.kind_codes[i])]

    def flow_at(self, i: int) -> Flow:
        """Materialize flow ``i`` as a scalar :class:`Flow`."""
        return Flow(int(self.src[i]), int(self.dst[i]),
                    float(self.gbps[i]), self.kind_of(i))

    def to_flows(self) -> list[Flow]:
        """Compatibility view: the same flows as Python objects."""
        src = self.src.tolist()
        dst = self.dst.tolist()
        gbps = self.gbps.tolist()
        codes = self.kind_codes.tolist()
        kinds = self.kinds
        return [Flow(s, d, g, kinds[c])
                for s, d, g, c in zip(src, dst, gbps, codes)]

    def slots(self, gbps_per_slot: float) -> np.ndarray:
        """Per-flow sub-slot demand at a given slot granularity.

        Vectorized twin of :meth:`Flow.slots` — identical to calling
        it per flow (same ceil-then-floor-at-one semantics, including
        fractional ``gbps_per_slot``).
        """
        slots = np.ceil(self.gbps / gbps_per_slot).astype(np.int64)
        np.maximum(slots, 1, out=slots)
        return slots

    def to_dict(self) -> dict:
        """JSON-stable form (round-trips exactly via :meth:`from_dict`).

        ``gbps`` floats survive json encode/decode bit-exactly:
        ``tolist`` yields Python floats and json round-trips those via
        repr, so no precision is shed.
        """
        return {
            "src": self.src.tolist(),
            "dst": self.dst.tolist(),
            "gbps": self.gbps.tolist(),
            "kinds": list(self.kinds),
            "kind_codes": self.kind_codes.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FlowBatch":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(
            src=np.asarray(payload["src"], dtype=np.int64),
            dst=np.asarray(payload["dst"], dtype=np.int64),
            gbps=np.asarray(payload["gbps"], dtype=np.float64),
            kinds=[str(k) for k in payload["kinds"]],
            kind_codes=np.asarray(payload["kind_codes"],
                                  dtype=np.int64),
        )

    @classmethod
    def empty(cls, kind: str = "generic") -> "FlowBatch":
        """A zero-flow batch."""
        z = np.zeros(0, dtype=np.int64)
        return cls(src=z, dst=z.copy(), gbps=np.zeros(0),
                   kinds=[kind], kind_codes=z.copy())

    @classmethod
    def from_flows(cls, flows) -> "FlowBatch":
        """Build a batch from scalar flows (or pass one through)."""
        if isinstance(flows, FlowBatch):
            return flows
        flows = list(flows)
        if not flows:
            return cls.empty()
        kinds: list[str] = []
        intern: dict[str, int] = {}
        codes = np.empty(len(flows), dtype=np.int64)
        for i, f in enumerate(flows):
            code = intern.get(f.kind)
            if code is None:
                code = intern[f.kind] = len(kinds)
                kinds.append(f.kind)
            codes[i] = code
        return cls(
            src=np.fromiter((f.src for f in flows), dtype=np.int64,
                            count=len(flows)),
            dst=np.fromiter((f.dst for f in flows), dtype=np.int64,
                            count=len(flows)),
            gbps=np.fromiter((f.gbps for f in flows),
                             dtype=np.float64, count=len(flows)),
            kinds=kinds, kind_codes=codes)

    @classmethod
    def concat(cls, batches) -> "FlowBatch":
        """Concatenate batches in order, re-interning kind tables."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        kinds: list[str] = []
        intern: dict[str, int] = {}
        codes = []
        for b in batches:
            remap = np.empty(len(b.kinds), dtype=np.int64)
            for j, kind in enumerate(b.kinds):
                code = intern.get(kind)
                if code is None:
                    code = intern[kind] = len(kinds)
                    kinds.append(kind)
                remap[j] = code
            codes.append(remap[b.kind_codes])
        return cls(src=np.concatenate([b.src for b in batches]),
                   dst=np.concatenate([b.dst for b in batches]),
                   gbps=np.concatenate([b.gbps for b in batches]),
                   kinds=kinds, kind_codes=np.concatenate(codes))


def as_flow_batch(flows) -> FlowBatch:
    """Coerce a batch-or-list argument to a :class:`FlowBatch`."""
    return FlowBatch.from_flows(flows)


def as_flow_list(flows) -> list:
    """Coerce a batch-or-list argument to ``list[Flow]``."""
    if isinstance(flows, FlowBatch):
        return flows.to_flows()
    return list(flows)


# -- generators (batch-native; the list forms are thin views) -----------------


def uniform_batch(n_nodes: int, n_flows: int, gbps: float = 25.0,
                  rng: SeedLike = None) -> FlowBatch:
    """Uniform-random pairs, fixed per-flow load.

    Draw order matches the historical per-flow loop exactly: one
    ``integers(n_nodes)`` then one ``integers(n_nodes - 1)`` per flow,
    via a single broadcast-bound call.
    """
    rng = as_generator(rng)
    high = np.empty(2 * n_flows, dtype=np.int64)
    high[0::2] = n_nodes
    high[1::2] = n_nodes - 1
    draws = (rng.integers(0, high) if n_flows
             else np.zeros(0, dtype=np.int64))
    src = np.ascontiguousarray(draws[0::2])
    dst = np.ascontiguousarray(draws[1::2])
    dst += dst >= src
    return FlowBatch(src=src, dst=dst,
                     gbps=np.full(n_flows, float(gbps)),
                     kinds=["uniform"])


def uniform_traffic(n_nodes: int, n_flows: int, gbps: float = 25.0,
                    rng: SeedLike = None) -> list[Flow]:
    """Uniform-random pairs, fixed per-flow load."""
    return uniform_batch(n_nodes, n_flows, gbps, rng).to_flows()


def hotspot_batch(n_nodes: int, hotspot: int, n_flows: int,
                  gbps: float = 25.0,
                  rng: SeedLike = None) -> FlowBatch:
    """Many sources converge on one destination (worst case for direct
    wavelengths; exercises indirect routing)."""
    rng = as_generator(rng)
    if not 0 <= hotspot < n_nodes:
        raise ValueError("hotspot index out of range")
    src = rng.integers(n_nodes - 1, size=n_flows)
    src += src >= hotspot
    return FlowBatch(src=src,
                     dst=np.full(n_flows, hotspot, dtype=np.int64),
                     gbps=np.full(n_flows, float(gbps)),
                     kinds=["hotspot"])


def hotspot_traffic(n_nodes: int, hotspot: int, n_flows: int,
                    gbps: float = 25.0,
                    rng: SeedLike = None) -> list[Flow]:
    """Many sources converge on one destination."""
    return hotspot_batch(n_nodes, hotspot, n_flows, gbps,
                         rng).to_flows()


def cpu_memory_batch(cpu_nodes: list[int], memory_nodes: list[int],
                     demand_gbps: np.ndarray | None = None,
                     rng: SeedLike = None,
                     p99_gbps: float = 125.0,
                     median_gbps: float = 3.7) -> FlowBatch:
    """CPU <-> DDR4 flows with a production-like heavy-tailed demand.

    §VI-A: on Cori, 25 Gbps covers CPU-memory demand 97% of the time
    and 125 Gbps 99.5% of the time. We draw demands from a lognormal
    whose quantiles approximate that profile (median ~3.7 Gbps = the
    0.46 GB/s three-quarters figure of §II-A), unless explicit demands
    are given.
    """
    rng = as_generator(rng)
    if not cpu_nodes or not memory_nodes:
        raise ValueError("need at least one CPU and one memory node")
    n = len(cpu_nodes)
    if demand_gbps is None:
        # Lognormal calibrated so P(demand > 25 Gbps) ~ 3% and
        # P(demand > 125 Gbps) ~ 0.5%: solve mu/sigma from those two
        # quantile equations. ln25=3.22 at z=1.88, ln125=4.83 at z=2.58.
        sigma = (np.log(125.0) - np.log(25.0)) / (2.576 - 1.881)
        mu = np.log(25.0) - 1.881 * sigma
        demand_gbps = rng.lognormal(mu, sigma, size=n)
    gbps = np.maximum(np.asarray(demand_gbps,
                                 dtype=np.float64)[:n], 0.01)
    mems = np.asarray(memory_nodes, dtype=np.int64)
    return FlowBatch(src=np.asarray(cpu_nodes, dtype=np.int64),
                     dst=mems[np.arange(n) % len(mems)],
                     gbps=gbps, kinds=["cpu-mem"])


def cpu_memory_traffic(cpu_nodes: list[int], memory_nodes: list[int],
                       demand_gbps: np.ndarray | None = None,
                       rng: SeedLike = None,
                       p99_gbps: float = 125.0,
                       median_gbps: float = 3.7) -> list[Flow]:
    """CPU <-> DDR4 flows with a production-like heavy-tailed demand."""
    return cpu_memory_batch(cpu_nodes, memory_nodes, demand_gbps,
                            rng, p99_gbps, median_gbps).to_flows()


def gpu_allreduce_batch(gpu_nodes: list[int], gbps_per_pair: float,
                        ) -> FlowBatch:
    """Ring-style GPU <-> GPU collective: node i sends to node i+1.

    §VI-A worst case: every GPU MCM communicates at full NVLink-class
    bandwidth with other GPU MCMs simultaneously, so indirect routing
    through GPUs is unproductive and HBM paths must carry the slack.
    """
    if len(gpu_nodes) < 2:
        raise ValueError("need at least two GPU nodes")
    src = np.asarray(gpu_nodes, dtype=np.int64)
    return FlowBatch(src=src, dst=np.roll(src, -1),
                     gbps=np.full(len(src), float(gbps_per_pair)),
                     kinds=["gpu-gpu"])


def gpu_allreduce_traffic(gpu_nodes: list[int], gbps_per_pair: float,
                          ) -> list[Flow]:
    """Ring-style GPU <-> GPU collective: node i sends to node i+1."""
    return gpu_allreduce_batch(gpu_nodes, gbps_per_pair).to_flows()


def gpu_hbm_batch(gpu_nodes: list[int], hbm_nodes: list[int],
                  gbyte_s_per_gpu: float = 1555.2) -> FlowBatch:
    """GPU <-> HBM streaming at native HBM bandwidth."""
    if not gpu_nodes or not hbm_nodes:
        raise ValueError("need GPU and HBM nodes")
    hbms = np.asarray(hbm_nodes, dtype=np.int64)
    n = len(gpu_nodes)
    return FlowBatch(src=np.asarray(gpu_nodes, dtype=np.int64),
                     dst=hbms[np.arange(n) % len(hbms)],
                     gbps=np.full(n, gbyte_s_per_gpu * 8.0),
                     kinds=["gpu-hbm"])


def gpu_hbm_traffic(gpu_nodes: list[int], hbm_nodes: list[int],
                    gbyte_s_per_gpu: float = 1555.2) -> list[Flow]:
    """GPU <-> HBM streaming at native HBM bandwidth."""
    return gpu_hbm_batch(gpu_nodes, hbm_nodes,
                         gbyte_s_per_gpu).to_flows()
