"""Traffic generators for the network simulator.

Patterns mirror the communication classes the paper's bandwidth
analysis reasons about (§VI-A): CPU <-> DDR4 and NIC <-> memory flows
sized from production profiles, GPU <-> HBM streams at near-line-rate,
and GPU <-> GPU collective traffic that replaces NVLink.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Accepted wherever a generator is needed: an existing ``Generator``,
#: a plain int seed (JSON-serializable, so sweep/scenario configs can
#: carry it through the result cache's stable hashing), or ``None``
#: for the historical default of ``default_rng(0)``.
SeedLike = np.random.Generator | int | None


def as_generator(rng: SeedLike) -> np.random.Generator:
    """Coerce a seed-like value to a ``numpy`` ``Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(0 if rng is None else rng)


@dataclass(frozen=True)
class Flow:
    """One steady flow between two endpoints.

    Parameters
    ----------
    src, dst:
        Endpoint indices in the simulated fabric.
    gbps:
        Offered load.
    kind:
        Free-form label ("cpu-mem", "gpu-hbm", ...), used in reports.
    """

    src: int
    dst: int
    gbps: float
    kind: str = "generic"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("flow endpoints must differ")
        if self.gbps <= 0:
            raise ValueError("flow bandwidth must be positive")

    def slots(self, gbps_per_slot: float) -> int:
        """Sub-slots this flow needs at a given slot granularity."""
        return max(1, int(np.ceil(self.gbps / gbps_per_slot)))

    def to_dict(self) -> dict:
        """JSON-stable form (simulator snapshots of in-flight flows)."""
        return {"src": self.src, "dst": self.dst, "gbps": self.gbps,
                "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: dict) -> "Flow":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(src=int(payload["src"]), dst=int(payload["dst"]),
                   gbps=float(payload["gbps"]),
                   kind=str(payload.get("kind", "generic")))


def uniform_traffic(n_nodes: int, n_flows: int, gbps: float = 25.0,
                    rng: SeedLike = None) -> list[Flow]:
    """Uniform-random pairs, fixed per-flow load."""
    rng = as_generator(rng)
    flows = []
    for _ in range(n_flows):
        src = int(rng.integers(n_nodes))
        dst = int(rng.integers(n_nodes - 1))
        if dst >= src:
            dst += 1
        flows.append(Flow(src, dst, gbps, kind="uniform"))
    return flows


def hotspot_traffic(n_nodes: int, hotspot: int, n_flows: int,
                    gbps: float = 25.0,
                    rng: SeedLike = None) -> list[Flow]:
    """Many sources converge on one destination (worst case for direct
    wavelengths; exercises indirect routing)."""
    rng = as_generator(rng)
    if not 0 <= hotspot < n_nodes:
        raise ValueError("hotspot index out of range")
    flows = []
    for _ in range(n_flows):
        src = int(rng.integers(n_nodes - 1))
        if src >= hotspot:
            src += 1
        flows.append(Flow(src, hotspot, gbps, kind="hotspot"))
    return flows


def cpu_memory_traffic(cpu_nodes: list[int], memory_nodes: list[int],
                       demand_gbps: np.ndarray | None = None,
                       rng: SeedLike = None,
                       p99_gbps: float = 125.0,
                       median_gbps: float = 3.7) -> list[Flow]:
    """CPU <-> DDR4 flows with a production-like heavy-tailed demand.

    §VI-A: on Cori, 25 Gbps covers CPU-memory demand 97% of the time
    and 125 Gbps 99.5% of the time. We draw demands from a lognormal
    whose quantiles approximate that profile (median ~3.7 Gbps = the
    0.46 GB/s three-quarters figure of §II-A), unless explicit demands
    are given.
    """
    rng = as_generator(rng)
    if not cpu_nodes or not memory_nodes:
        raise ValueError("need at least one CPU and one memory node")
    n = len(cpu_nodes)
    if demand_gbps is None:
        # Lognormal calibrated so P(demand > 25 Gbps) ~ 3% and
        # P(demand > 125 Gbps) ~ 0.5%: solve mu/sigma from those two
        # quantile equations. ln25=3.22 at z=1.88, ln125=4.83 at z=2.58.
        sigma = (np.log(125.0) - np.log(25.0)) / (2.576 - 1.881)
        mu = np.log(25.0) - 1.881 * sigma
        demand_gbps = rng.lognormal(mu, sigma, size=n)
    flows = []
    for i, cpu in enumerate(cpu_nodes):
        mem = memory_nodes[i % len(memory_nodes)]
        flows.append(Flow(cpu, mem, float(max(demand_gbps[i], 0.01)),
                          kind="cpu-mem"))
    return flows


def gpu_allreduce_traffic(gpu_nodes: list[int], gbps_per_pair: float,
                          ) -> list[Flow]:
    """Ring-style GPU <-> GPU collective: node i sends to node i+1.

    §VI-A worst case: every GPU MCM communicates at full NVLink-class
    bandwidth with other GPU MCMs simultaneously, so indirect routing
    through GPUs is unproductive and HBM paths must carry the slack.
    """
    if len(gpu_nodes) < 2:
        raise ValueError("need at least two GPU nodes")
    flows = []
    for i, src in enumerate(gpu_nodes):
        dst = gpu_nodes[(i + 1) % len(gpu_nodes)]
        flows.append(Flow(src, dst, gbps_per_pair, kind="gpu-gpu"))
    return flows


def gpu_hbm_traffic(gpu_nodes: list[int], hbm_nodes: list[int],
                    gbyte_s_per_gpu: float = 1555.2) -> list[Flow]:
    """GPU <-> HBM streaming at native HBM bandwidth."""
    if not gpu_nodes or not hbm_nodes:
        raise ValueError("need GPU and HBM nodes")
    flows = []
    for i, gpu in enumerate(gpu_nodes):
        hbm = hbm_nodes[i % len(hbm_nodes)]
        flows.append(Flow(gpu, hbm, gbyte_s_per_gpu * 8.0, kind="gpu-hbm"))
    return flows
