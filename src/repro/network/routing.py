"""Indirect (Valiant-style) routing over parallel AWGRs (paper §IV).

A source that needs more bandwidth toward a destination than its
direct wavelengths provide splits traffic across intermediate nodes:
traffic rides the source's direct wavelength to an intermediate ``i``,
then ``i``'s direct wavelength to the destination. Candidates must
look free in *both* hops according to the source's (possibly stale)
piggybacked state; among candidates, one is chosen uniformly at random
in a Valiant fashion, per flow (to keep packets of one flow in order).

When stale state misleads the source and the chosen intermediate's
onward wavelength is actually busy, the intermediate re-routes through
a *second* intermediate (the paper's fallback), which we model with a
bounded recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.network.state import PiggybackState
from repro.network.wavelength import WavelengthAllocator


class RouteKind(Enum):
    """How a flow ended up being carried."""

    DIRECT = "direct"
    INDIRECT = "indirect"          # one intermediate
    DOUBLE_INDIRECT = "double"     # stale-state fallback, two intermediates
    BLOCKED = "blocked"


#: Integer kind codes for the object-free batch path (also re-exported
#: by :mod:`repro.network.simulator` for its ``BatchDecisions`` arrays).
DIRECT, INDIRECT, DOUBLE_INDIRECT, BLOCKED = range(4)

_KIND_BY_CODE = (RouteKind.DIRECT, RouteKind.INDIRECT,
                 RouteKind.DOUBLE_INDIRECT, RouteKind.BLOCKED)


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of routing one flow.

    ``path`` lists the node sequence (src, [mid...,] dst) when carried;
    ``reservations`` records (src, dst, planes) tuples to release later.
    """

    kind: RouteKind
    path: tuple[int, ...]
    reservations: tuple[tuple[int, int, tuple[int, ...]], ...] = ()
    used_stale_fallback: bool = False

    @property
    def hops(self) -> int:
        """Photonic hops taken (0 when blocked)."""
        return max(0, len(self.path) - 1)

    def to_dict(self) -> dict:
        """JSON-stable form (simulator snapshots of in-flight flows)."""
        return {
            "kind": self.kind.value,
            "path": list(self.path),
            "reservations": [[a, b, list(planes)]
                             for (a, b, planes) in self.reservations],
            "used_stale_fallback": self.used_stale_fallback,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RouteDecision":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(
            kind=RouteKind(payload["kind"]),
            path=tuple(int(n) for n in payload["path"]),
            reservations=tuple(
                (int(a), int(b), tuple(int(p) for p in planes))
                for (a, b, planes) in payload["reservations"]),
            used_stale_fallback=bool(
                payload.get("used_stale_fallback", False)))


@dataclass
class IndirectRouter:
    """Per-source routing logic over a shared allocator.

    Parameters
    ----------
    allocator:
        Ground-truth wavelength occupancy (shared by all sources).
    state:
        Piggybacked-view model; when ``None`` the router consults the
        allocator directly (perfect information).
    max_fallback_depth:
        How many times an intermediate may itself route indirectly
        before the flow is blocked (1 reproduces the paper's
        second-intermediate fallback).
    """

    allocator: WavelengthAllocator
    state: PiggybackState | None = None
    max_fallback_depth: int = 1
    rng_seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.rng_seed)
        self.stats = {kind: 0 for kind in RouteKind}
        self.stale_mispredictions = 0

    # -- public API --------------------------------------------------------------

    def route_flow(self, src: int, dst: int, slots: int = 1) -> RouteDecision:
        """Route one flow of ``slots`` sub-slots from ``src`` to ``dst``.

        Tries the direct wavelength first (§IV-A: "sources consider
        indirect paths only if the direct bandwidth ... does not
        suffice"), then a Valiant-chosen intermediate, then the
        intermediate's own fallback.
        """
        if src == dst:
            raise ValueError("source equals destination")
        code, path, reservations, stale = self._route_core(
            src, dst, slots, depth=0)
        decision = RouteDecision(
            kind=_KIND_BY_CODE[code], path=path,
            reservations=reservations, used_stale_fallback=stale)
        self.stats[decision.kind] += 1
        return decision

    def route_tokens(self, src: int, dst: int, slots: int = 1
                     ) -> tuple[int, int, tuple]:
        """Route one flow without materializing a :class:`RouteDecision`.

        The object-free twin of :meth:`route_flow` for the batched
        admission path: identical allocator mutations, RNG consumption,
        and stats bookkeeping, but the outcome comes back as plain
        ``(kind_code, hops, reservations)`` — kind codes are the
        module-level :data:`DIRECT` ... :data:`BLOCKED` ints and
        ``reservations`` the usual (a, b, planes) tuples, ready to be
        scattered into sub-slot token arrays.
        """
        if src == dst:
            raise ValueError("source equals destination")
        code, path, reservations, _ = self._route_core(
            src, dst, slots, depth=0)
        self.stats[_KIND_BY_CODE[code]] += 1
        return code, max(0, len(path) - 1), reservations

    def release(self, decision: RouteDecision) -> None:
        """Release every reservation of a carried flow."""
        for (a, b, planes) in decision.reservations:
            self.allocator.release(a, b, list(planes))

    def snapshot(self) -> dict:
        """JSON-stable capture of the router's mutable state.

        The Valiant intermediate choice consumes the router RNG per
        indirect flow, so carrying a run across a checkpoint boundary
        requires the exact generator state — ``bit_generator.state``
        is a plain dict of ints and survives JSON round trips
        losslessly (Python ints are arbitrary precision).
        """
        return {
            "rng": self._rng.bit_generator.state,
            "stats": {kind.value: count
                      for kind, count in self.stats.items()},
            "stale_mispredictions": self.stale_mispredictions,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts)."""
        self._rng.bit_generator.state = state["rng"]
        self.stats = {kind: int(state["stats"].get(kind.value, 0))
                      for kind in RouteKind}
        self.stale_mispredictions = int(state["stale_mispredictions"])

    def candidate_intermediates(self, src: int, dst: int,
                                slots: int = 1) -> np.ndarray:
        """Intermediates that look free on both hops per src's view.

        Vectorized: the first hop (src -> mid) always uses the source's
        exact occupancy; the second hop (mid -> dst) uses the
        piggybacked board when one exists.
        """
        first_free = self.allocator.free_slots_from(src) >= slots
        if self.state is None:
            second_free = self.allocator.free_slots_to(dst) >= slots
        else:
            board = self.state.board_of(src)
            total = (self.allocator.planes
                     * self.allocator.flows_per_wavelength)
            second_free = board.view[:, dst] + slots <= total
        ok = first_free & second_free
        ok[src] = False
        ok[dst] = False
        return np.nonzero(ok)[0]

    # -- internals ----------------------------------------------------------------

    def _route_core(self, src: int, dst: int, slots: int, depth: int
                    ) -> tuple[int, tuple[int, ...], tuple, bool]:
        """One flow's routing as plain data: (code, path, reservations,
        used_stale_fallback).

        The candidate walk is vectorized: after the Valiant shuffle,
        ground-truth second-hop availability is evaluated for *every*
        candidate in one array comparison, so the chosen intermediate
        is found with a single scan instead of per-candidate
        ``has_capacity`` calls. Only the mispredicted prefix —
        candidates the (stale) local view endorsed whose onward hop is
        actually busy — is walked one by one, because each triggers
        the paper's §IV-A fallback recursion.

        The one-shot scan is exact because nothing that happens during
        the walk can change column ``dst`` of the occupancy before a
        later candidate is considered: first-hop (src, mid)
        allocations never touch it (mid != dst), and a fallback
        recursion either succeeds (we return immediately) or releases
        everything it allocated, leaving occupancy bit-identical to
        the walk's start.
        """
        # 1. Direct wavelength.
        if self.allocator.has_capacity(src, dst, slots):
            planes = self.allocator.allocate(src, dst, slots)
            return (DIRECT if depth == 0 else DOUBLE_INDIRECT,
                    (src, dst), ((src, dst, tuple(planes)),), depth > 0)

        # 2. Valiant intermediate per the (possibly stale) local view.
        candidates = self.candidate_intermediates(src, dst, slots)
        self._rng.shuffle(candidates)
        if len(candidates):
            onward_free = (self.allocator.free_slots_to(dst)[candidates]
                           >= slots)
            free = np.flatnonzero(onward_free)
            mispredicted = int(free[0]) if free.size else len(candidates)
            for i in range(mispredicted):
                mid = int(candidates[i])
                if not self.allocator.has_capacity(src, mid, slots):
                    # Stale view lied about our own first hop (cannot
                    # really happen with per-source truth, but kept
                    # for safety).
                    continue
                first = self.allocator.allocate(src, mid, slots)
                # Stale information: the onward hop is actually busy.
                # The intermediate performs its own indirect routing
                # (§IV-A).
                self.stale_mispredictions += 1
                if depth < self.max_fallback_depth:
                    code, path, reservations, _ = self._route_core(
                        mid, dst, slots, depth + 1)
                    if code != BLOCKED:
                        return (DOUBLE_INDIRECT, (src,) + path,
                                ((src, mid, tuple(first)),)
                                + reservations, True)
                self.allocator.release(src, mid, first)
            if mispredicted < len(candidates):
                mid = int(candidates[mispredicted])
                first = self.allocator.allocate(src, mid, slots)
                second = self.allocator.allocate(mid, dst, slots)
                return (INDIRECT if depth == 0 else DOUBLE_INDIRECT,
                        (src, mid, dst),
                        ((src, mid, tuple(first)),
                         (mid, dst, tuple(second))), depth > 0)

        return (BLOCKED, (src,), (), False)

    def _believed_free(self, viewer: int, a: int, b: int, slots: int) -> bool:
        """Does ``viewer`` believe (a -> b) has capacity?

        A source always knows its *own* occupancy exactly; other
        sources' occupancy comes from the piggybacked board.
        """
        if a == b:
            return False
        if self.state is None or a == viewer:
            return self.allocator.has_capacity(a, b, slots)
        return self.state.board_of(viewer).believed_free(a, b, slots)
