"""Piggybacked occupancy state with staleness (paper §IV-A).

Indirect routing needs each source to know which wavelengths *other*
sources have occupied, so it can pick a productive intermediate hop.
The paper piggybacks each source's one-hot occupancy vector on normal
traffic, broadcasting it to the other sources attached to the same
AWGR a few times a second; pairs that never exchange traffic fall back
to explicit control messages.

Because the broadcast is periodic, a source's view can be *stale*.
:class:`PiggybackState` models that: it snapshots the global
:class:`~repro.network.wavelength.WavelengthAllocator` only every
``update_period`` simulation slots, so decisions in between use old
data — exactly the failure mode the paper's two-stage fallback
(intermediate re-routes through a second intermediate) handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.wavelength import WavelengthAllocator


@dataclass
class OccupancyBoard:
    """One source's (possibly stale) view of everyone's occupancy.

    ``view[s, d]`` is the used-sub-slot count from source ``s`` to
    destination ``d`` as last heard. ``age[s]`` is how many slots ago
    source ``s``'s vector was refreshed.
    """

    n_nodes: int
    slots_per_pair: int

    def __post_init__(self) -> None:
        self.view = np.zeros((self.n_nodes, self.n_nodes), dtype=np.int32)
        self.age = np.zeros(self.n_nodes, dtype=np.int64)

    def refresh_from(self, src: int, slot_bitmap: np.ndarray) -> None:
        """Install a fresh status vector heard from ``src``."""
        if slot_bitmap.shape != (self.n_nodes,):
            raise ValueError("status vector has wrong shape")
        self.view[src] = slot_bitmap
        self.age[src] = 0

    def tick(self) -> None:
        """Advance time by one slot (ages all rows)."""
        self.age += 1

    def believed_free(self, src: int, dst: int, slots: int = 1) -> bool:
        """Does this view think (src -> dst) has ``slots`` free sub-slots?"""
        return self.view[src, dst] + slots <= self.slots_per_pair

    def status_bytes(self, bits_per_pair: int = 8) -> int:
        """Size of one piggybacked status vector in bytes.

        Reproduces the paper's example: 256 destinations x 8 bits =
        256 bytes.
        """
        return self.n_nodes * bits_per_pair // 8


@dataclass
class PiggybackState:
    """Global staleness model: one :class:`OccupancyBoard` per source.

    Parameters
    ----------
    allocator:
        Ground-truth occupancy.
    update_period:
        Slots between status broadcasts. 1 = always-fresh state
        (idealized); larger values inject staleness.
    jitter:
        Optional per-source phase offset so all sources do not refresh
        on the same slot (more realistic piggybacking).
    """

    allocator: WavelengthAllocator
    update_period: int = 1
    jitter: bool = True
    rng_seed: int = 0
    boards: list[OccupancyBoard] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.update_period <= 0:
            raise ValueError("update_period must be positive")
        n = self.allocator.n_nodes
        slots = self.allocator.planes * self.allocator.flows_per_wavelength
        self.boards = [OccupancyBoard(n, slots) for _ in range(n)]
        rng = np.random.default_rng(self.rng_seed)
        if self.jitter and self.update_period > 1:
            self._phase = rng.integers(0, self.update_period, size=n)
        else:
            self._phase = np.zeros(n, dtype=int)
        self._now = 0
        self.broadcast_all()

    # -- time ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one slot: age every view, deliver due broadcasts.

        The due sources' status vectors are gathered in one batched
        :meth:`~repro.network.wavelength.WavelengthAllocator.slot_bitmaps`
        read and installed with one row assignment per board — the
        same values the per-source ``_broadcast`` loop would write
        (integer row installs, no accumulation), without the N_due x N
        Python calls that used to dominate full-rack epochs.
        """
        self._now += 1
        due = np.flatnonzero(
            (self._now + self._phase) % self.update_period == 0)
        fresh = self.allocator.slot_bitmaps(due) if due.size else None
        for board in self.boards:
            board.tick()
            if fresh is not None:
                board.view[due] = fresh
                board.age[due] = 0

    def broadcast_all(self) -> None:
        """Deliver fresh state from every source (e.g. at t=0)."""
        srcs = np.arange(self.allocator.n_nodes)
        fresh = self.allocator.slot_bitmaps(srcs)
        for board in self.boards:
            board.view[srcs] = fresh
            board.age[srcs] = 0

    def _broadcast(self, src: int) -> None:
        vector = self.allocator.slot_bitmap(src)
        for board in self.boards:
            board.refresh_from(src, vector)

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-stable capture of every board plus the broadcast clock.

        The per-source jitter phases are included because they are
        drawn from the constructor's RNG: a restored instance built
        with a different seed must still broadcast on the original
        schedule.
        """
        return {
            "now": self._now,
            "phase": [int(p) for p in self._phase],
            "boards": [{"view": b.view.tolist(), "age": b.age.tolist()}
                       for b in self.boards],
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts)."""
        if len(state["boards"]) != len(self.boards):
            raise ValueError(
                f"snapshot has {len(state['boards'])} boards, "
                f"expected {len(self.boards)}")
        self._now = int(state["now"])
        self._phase = np.asarray(state["phase"], dtype=np.int64)
        for board, payload in zip(self.boards, state["boards"]):
            board.view[...] = np.asarray(payload["view"], dtype=np.int32)
            board.age[...] = np.asarray(payload["age"], dtype=np.int64)

    # -- queries ---------------------------------------------------------------

    def board_of(self, node: int) -> OccupancyBoard:
        """The view held by ``node``."""
        return self.boards[node]

    def max_staleness(self) -> int:
        """Oldest view age across all boards (slots)."""
        return max(int(b.age.max()) for b in self.boards)

    def piggyback_overhead_fraction(self, broadcasts_per_second: float = 10.0,
                                    bits_per_pair: int = 8,
                                    wavelength_gbps: float = 25.0) -> float:
        """Bandwidth fraction consumed by status vectors (§IV-A).

        The paper argues this is negligible; with the default 256-node
        sizing, 10 broadcasts/s of a 256-byte vector on a 25 Gbps
        wavelength is ~8e-7 of capacity.
        """
        vector_bits = self.allocator.n_nodes * bits_per_pair
        bits_per_second = vector_bits * broadcasts_per_second
        return bits_per_second / (wavelength_gbps * 1e9)
