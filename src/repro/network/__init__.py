"""Photonic network substrate: wavelength allocation, indirect routing,
piggybacked state, a flow-level simulator, and the electronic comparator.

Implements the control logic of paper §IV over the fabric plans of
:mod:`repro.rack.design`, plus the §VI-D electronic-switch latency
model used as the comparison point for Fig. 12.
"""

from repro.network.wavelength import WavelengthAllocator
from repro.network.state import OccupancyBoard, PiggybackState
from repro.network.routing import (
    IndirectRouter,
    RouteDecision,
    RouteKind,
)
from repro.network.traffic import (
    Flow,
    FlowBatch,
    uniform_traffic,
    uniform_batch,
    hotspot_traffic,
    hotspot_batch,
    cpu_memory_traffic,
    cpu_memory_batch,
    gpu_allreduce_traffic,
    gpu_allreduce_batch,
)
from repro.network.simulator import (
    AWGRNetworkSimulator,
    BatchDecisions,
    SimulationReport,
)
from repro.network.electronic import (
    ElectronicSwitch,
    ELECTRONIC_CATALOG,
    electronic_disaggregation_latency_ns,
)
from repro.network.topology import (
    awgr_connectivity_graph,
    wss_connectivity_graph,
)
from repro.network.reconfig import (
    ReconfigurableFabric,
    SwitchConfiguration,
    schedule_demand,
    reconfiguration_overhead_ok,
)
from repro.network.wss_simulator import (
    WSSNetworkSimulator,
    WSSSimulationReport,
)

__all__ = [
    "WavelengthAllocator", "OccupancyBoard", "PiggybackState",
    "IndirectRouter", "RouteDecision", "RouteKind",
    "Flow", "FlowBatch",
    "uniform_traffic", "uniform_batch",
    "hotspot_traffic", "hotspot_batch",
    "cpu_memory_traffic", "cpu_memory_batch",
    "gpu_allreduce_traffic", "gpu_allreduce_batch",
    "AWGRNetworkSimulator", "BatchDecisions", "SimulationReport",
    "ElectronicSwitch", "ELECTRONIC_CATALOG",
    "electronic_disaggregation_latency_ns",
    "awgr_connectivity_graph", "wss_connectivity_graph",
    "ReconfigurableFabric", "SwitchConfiguration", "schedule_demand",
    "reconfiguration_overhead_ok",
    "WSSNetworkSimulator", "WSSSimulationReport",
]
