"""Case-(B) end-to-end simulator: WSS fabric + centralized scheduler.

Couples the §V-B wave-selective fabric plan (11 staggered 256-port
switches) with the §IV-B reconfigurable-switch model: flows arrive in
slots, the fabric serves whatever its *current* configuration carries,
and a centralized scheduler re-plans every ``reconfig_period`` slots
from the demand it most recently observed. This is the architecture
the paper compares case (A) against: same raw capacity, but served
bandwidth depends on how well (and how recently) the scheduler's
configuration matches demand, and reconfiguration itself costs fabric
downtime.

The simulator is deliberately parallel in structure to
:class:`~repro.network.simulator.AWGRNetworkSimulator` so the two can
be benchmarked head-to-head on identical flow batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.reconfig import ReconfigurableFabric
from repro.network.traffic import Flow, FlowBatch


@dataclass
class WSSSimulationReport:
    """Aggregate results of one case-(B) run."""

    slots: int = 0
    offered_gbps: float = 0.0
    carried_gbps: float = 0.0
    reconfigurations: int = 0
    downtime_s: float = 0.0
    per_slot_served: list[float] = field(default_factory=list)

    @property
    def throughput_ratio(self) -> float:
        """Fraction of offered bandwidth carried across the run."""
        if self.offered_gbps <= 0:
            return 1.0
        return self.carried_gbps / self.offered_gbps

    @property
    def worst_slot_served(self) -> float:
        """Served fraction in the worst slot (scheduler lag exposure)."""
        return min(self.per_slot_served) if self.per_slot_served else 1.0

    def as_dict(self) -> dict:
        """Plain-dict view for report rendering."""
        return {
            "slots": self.slots,
            "offered_gbps": self.offered_gbps,
            "carried_gbps": self.carried_gbps,
            "throughput_ratio": self.throughput_ratio,
            "worst_slot_served": self.worst_slot_served,
            "reconfigurations": self.reconfigurations,
            "downtime_s": self.downtime_s,
        }


@dataclass
class WSSNetworkSimulator:
    """Slot simulator over the reconfigurable wave-selective fabric.

    Parameters
    ----------
    n_nodes:
        Endpoints (MCMs).
    n_switches, wavelengths_per_port, gbps_per_wavelength:
        Fabric dimensions (§V-B case B defaults scaled down are fine
        for experiments; radix is taken equal to ``n_nodes`` so every
        endpoint owns one port per switch).
    reconfig_period:
        Slots between scheduler invocations (1 = reconfigure every
        slot; larger values model scheduler reaction lag).
    slot_time_s:
        Wall-clock duration of one slot, used to convert the fabric's
        reconfiguration time into slot downtime.
    """

    n_nodes: int
    n_switches: int = 4
    wavelengths_per_port: int = 16
    gbps_per_wavelength: float = 25.0
    reconfig_period: int = 1
    slot_time_s: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if self.reconfig_period <= 0:
            raise ValueError("reconfig_period must be positive")
        if self.slot_time_s <= 0:
            raise ValueError("slot_time_s must be positive")
        self.fabric = ReconfigurableFabric(
            n_switches=self.n_switches,
            radix=self.n_nodes,
            wavelengths_per_port=self.wavelengths_per_port,
            gbps_per_wavelength=self.gbps_per_wavelength)
        self._slot = 0

    def snapshot(self) -> dict:
        """JSON-stable capture of the slot clock plus fabric state."""
        return {"slot": self._slot, "fabric": self.fabric.snapshot()}

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts)."""
        self._slot = int(state["slot"])
        self.fabric.restore(state["fabric"])

    @staticmethod
    def demand_matrix(flows: FlowBatch | list[Flow],
                      n_nodes: int) -> np.ndarray:
        """Aggregate a flow batch into an (N, N) Gbps demand matrix.

        Accepts either traffic representation. The batch form scatters
        with unbuffered ``np.add.at``, which applies repeated (src,
        dst) pairs in flow order — bit-identical to the per-flow
        ``+=`` loop.
        """
        demand = np.zeros((n_nodes, n_nodes))
        if isinstance(flows, FlowBatch):
            np.add.at(demand, (flows.src, flows.dst), flows.gbps)
            return demand
        for flow in flows:
            demand[flow.src, flow.dst] += flow.gbps
        return demand

    def run(self, flow_batches: list[list[Flow]]) -> WSSSimulationReport:
        """Serve one batch per slot under periodic reconfiguration."""
        report = WSSSimulationReport()
        for batch in flow_batches:
            demand = self.demand_matrix(batch, self.n_nodes)
            downtime_fraction = 0.0
            if self._slot % self.reconfig_period == 0:
                self.fabric.reconfigure(demand)
                report.reconfigurations += 1
                downtime = (self.fabric.reconfig_time_s
                            + self.fabric.scheduler_latency_s)
                report.downtime_s += downtime
                downtime_fraction = min(1.0, downtime / self.slot_time_s)
            served = self.fabric.served_fraction(demand)
            # Ports being reconfigured carry nothing for that share of
            # the slot.
            effective = served * (1.0 - downtime_fraction)
            offered = float(demand.sum())
            report.offered_gbps += offered
            report.carried_gbps += offered * effective
            report.per_slot_served.append(effective)
            report.slots += 1
            self._slot += 1
        return report
