"""Flow-level slot simulator for the AWGR fabric (§IV, §VI-A).

The simulator advances in discrete slots. Each slot it admits arriving
flows through the :class:`~repro.network.routing.IndirectRouter`,
retires expiring flows, and steps the piggyback state so views age
realistically. It reports how traffic was carried (direct / indirect /
two-intermediate fallback / blocked), delivered bandwidth, and latency
statistics derived from the rack latency model.

This is deliberately a *flow-level* model, not a packet simulator: the
paper's §VI-A argument is about whether wavelength capacity exists for
each demand, which flow-level admission captures, while packet effects
are subsumed in the fixed 35 ns latency adder evaluated separately.

Two admission paths share one set of semantics:

* the **scalar** path (:meth:`AWGRNetworkSimulator.offer`) admits one
  flow at a time — the reference implementation;
* the **batched** path (:meth:`AWGRNetworkSimulator.offer_batch`)
  vectorizes a whole slot's arrivals: it bulk-admits the maximal
  prefix of direct-capable flows with one grouped capacity scan and
  one scatter allocation, routes the first non-direct flow through
  the router's object-free ``route_tokens`` fallback (itself a
  vectorized candidate scan), then rescans. Because direct admissions
  touch only their own (src, dst) wavelengths, the prefix scan is an
  exact replay of sequential admission, so both paths produce
  bit-identical :class:`SimulationReport` aggregates (and identical
  occupancy, RNG consumption, and piggyback state) for seeded runs.
  The batched path consumes :class:`~repro.network.traffic.FlowBatch`
  arrays directly and stores every admitted flow as sub-slot tokens,
  so a whole epoch runs without materializing a single ``Flow`` or
  ``RouteDecision`` object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.routing import (
    BLOCKED,
    DIRECT,
    DOUBLE_INDIRECT,
    INDIRECT,
    IndirectRouter,
    RouteDecision,
    RouteKind,
)
from repro.network.state import PiggybackState
from repro.network.traffic import Flow, FlowBatch
from repro.network.wavelength import WavelengthAllocator


def sequential_sum(start: float, values: np.ndarray) -> float:
    """Strict left-to-right float accumulation starting from ``start``.

    ``np.add.accumulate`` must produce every prefix, so it folds left
    to right like a ``+=`` loop — unlike ``np.sum``, whose pairwise
    summation rounds differently. The batched report builders use this
    so their float aggregates stay *bit-identical* to the scalar
    per-flow accumulation.
    """
    if len(values) == 0:
        return start
    return float(np.add.accumulate(
        np.concatenate(((start,), values)))[-1])


@dataclass
class SimulationReport:
    """Aggregate results of one simulation run."""

    slots: int = 0
    offered: int = 0
    carried_direct: int = 0
    carried_indirect: int = 0
    carried_double: int = 0
    blocked: int = 0
    offered_gbps: float = 0.0
    carried_gbps: float = 0.0
    stale_mispredictions: int = 0
    hop_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def carried(self) -> int:
        """All flows that found capacity."""
        return self.carried_direct + self.carried_indirect + self.carried_double

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of offered flows carried.

        A zero-offered run reports 0.0, not 1.0 — an idle run must
        never read as "perfect fabric" in benchmark tables (the same
        bug the scenario-layer ratios had).
        """
        return self.carried / self.offered if self.offered else 0.0

    @property
    def throughput_ratio(self) -> float:
        """Fraction of offered bandwidth carried (0.0 when idle)."""
        return (self.carried_gbps / self.offered_gbps
                if self.offered_gbps else 0.0)

    @property
    def indirect_fraction(self) -> float:
        """Fraction of carried flows that needed any indirection."""
        if not self.carried:
            return 0.0
        return (self.carried_indirect + self.carried_double) / self.carried

    def as_dict(self) -> dict:
        """Plain-dict view for report rendering."""
        return {
            "slots": self.slots,
            "offered": self.offered,
            "carried": self.carried,
            "direct": self.carried_direct,
            "indirect": self.carried_indirect,
            "double_indirect": self.carried_double,
            "blocked": self.blocked,
            "acceptance_ratio": self.acceptance_ratio,
            "throughput_ratio": self.throughput_ratio,
            "indirect_fraction": self.indirect_fraction,
            "stale_mispredictions": self.stale_mispredictions,
        }


@dataclass
class BatchDecisions:
    """Vectorized outcome of one :meth:`offer_batch` call.

    Arrays are indexed by the batch's flow order: ``kinds`` holds the
    module-level kind codes (:data:`DIRECT` ... :data:`BLOCKED`),
    ``hops`` the photonic hops taken (0 when blocked), ``gbps`` the
    offered bandwidth per flow.
    """

    kinds: np.ndarray
    hops: np.ndarray
    gbps: np.ndarray

    @property
    def carried_mask(self) -> np.ndarray:
        """Boolean mask of flows that found capacity."""
        return self.kinds != BLOCKED


@dataclass
class _DirectBatch:
    """Compact sub-slot token store for one slot's bulk admissions.

    One row per reserved sub-slot: the (src, dst) wavelength pair, the
    plane carrying it, and the local flow index that owns it — enough
    to release everything with one scatter subtract at expiry and to
    drop whole flows when a plane fails, without materializing a
    Python ``RouteDecision`` per flow.
    """

    src: np.ndarray
    dst: np.ndarray
    plane: np.ndarray
    flow: np.ndarray

    def release(self, allocator: WavelengthAllocator) -> None:
        """Return every token to the allocator (flow expiry)."""
        allocator.release_tokens(self.src, self.dst, self.plane)

    def drop_plane(self, allocator: WavelengthAllocator,
                   plane: int) -> int:
        """Drop flows with any token on a failed plane.

        Surviving-plane tokens of dropped flows are released (the
        allocator already zeroed the failed plane's occupancy).
        Returns how many flows were dropped.
        """
        hit = self.plane == plane
        if not hit.any():
            return 0
        doomed_flows = np.unique(self.flow[hit])
        doomed = np.isin(self.flow, doomed_flows)
        live = doomed & ~hit
        allocator.release_tokens(self.src[live], self.dst[live],
                                 self.plane[live])
        keep = ~doomed
        self.src = self.src[keep]
        self.dst = self.dst[keep]
        self.plane = self.plane[keep]
        self.flow = self.flow[keep]
        return int(doomed_flows.size)

    def to_dict(self) -> dict:
        """JSON-stable form (simulator snapshots)."""
        return {"src": self.src.tolist(), "dst": self.dst.tolist(),
                "plane": self.plane.tolist(),
                "flow": self.flow.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "_DirectBatch":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(src=np.asarray(payload["src"], dtype=np.int64),
                   dst=np.asarray(payload["dst"], dtype=np.int64),
                   plane=np.asarray(payload["plane"], dtype=np.int64),
                   flow=np.asarray(payload["flow"], dtype=np.int64))


@dataclass
class _ExpiryBucket:
    """Everything retiring at one future slot."""

    entries: list[tuple[Flow, RouteDecision]] = field(default_factory=list)
    batches: list[_DirectBatch] = field(default_factory=list)

    def release(self, router: IndirectRouter,
                allocator: WavelengthAllocator) -> None:
        for (_, decision) in self.entries:
            router.release(decision)
        for batch in self.batches:
            batch.release(allocator)

    def to_dict(self) -> dict:
        """JSON-stable form (simulator snapshots)."""
        return {"entries": [[flow.to_dict(), decision.to_dict()]
                            for (flow, decision) in self.entries],
                "batches": [batch.to_dict() for batch in self.batches]}

    @classmethod
    def from_dict(cls, payload: dict) -> "_ExpiryBucket":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(
            entries=[(Flow.from_dict(flow), RouteDecision.from_dict(d))
                     for (flow, d) in payload["entries"]],
            batches=[_DirectBatch.from_dict(b)
                     for b in payload["batches"]])


@dataclass
class AWGRNetworkSimulator:
    """Slot-based admission simulator over parallel AWGR planes.

    Parameters
    ----------
    n_nodes:
        Attached endpoints (MCMs).
    planes:
        Parallel AWGR planes (direct wavelengths per pair).
    flows_per_wavelength:
        Sub-slot multiplexing granularity.
    gbps_per_wavelength:
        Line rate per wavelength.
    state_update_period:
        Piggyback broadcast period in slots (1 = fresh state).
    track_state:
        When false, skip the per-node piggyback boards and route with
        perfect information. The boards cost O(N^2) memory *per node*,
        so rack-scale (350-MCM) feasibility checks should disable them;
        staleness studies on smaller fabrics keep them on.
    batch_admission:
        When true (the default), :meth:`run` admits each slot's flows
        through the vectorized :meth:`offer_batch` hot path. The
        scalar per-flow path is semantically identical (see the module
        docstring); keep this switch for equivalence tests and
        benchmarking the two paths against each other.
    """

    n_nodes: int
    planes: int = 5
    flows_per_wavelength: int = 8
    gbps_per_wavelength: float = 25.0
    state_update_period: int = 1
    rng_seed: int = 0
    track_state: bool = True
    batch_admission: bool = True

    def __post_init__(self) -> None:
        self.allocator = WavelengthAllocator(
            n_nodes=self.n_nodes, planes=self.planes,
            flows_per_wavelength=self.flows_per_wavelength,
            gbps_per_wavelength=self.gbps_per_wavelength)
        self.state = None
        if self.track_state:
            self.state = PiggybackState(
                self.allocator, update_period=self.state_update_period,
                rng_seed=self.rng_seed)
        self.router = IndirectRouter(
            self.allocator, state=self.state, rng_seed=self.rng_seed)
        # Active flows keyed by expiry slot: step() pops exactly one
        # bucket instead of rebuilding an O(active) list every slot.
        self._buckets: dict[int, _ExpiryBucket] = {}
        self._now = 0

    @property
    def slot_gbps(self) -> float:
        """Bandwidth of one sub-slot."""
        return self.gbps_per_wavelength / self.flows_per_wavelength

    def _bucket_at(self, duration_slots: int) -> _ExpiryBucket:
        # Durations below one slot still survive until the next step,
        # matching the historical ``expiry <= now`` retirement check.
        expiry = self._now + max(1, duration_slots)
        bucket = self._buckets.get(expiry)
        if bucket is None:
            bucket = self._buckets[expiry] = _ExpiryBucket()
        return bucket

    # -- single-shot admission -----------------------------------------------------

    def offer(self, flow: Flow, duration_slots: int = 1) -> RouteDecision:
        """Admit one flow now; it retires after ``duration_slots``."""
        slots = flow.slots(self.slot_gbps)
        decision = self.router.route_flow(flow.src, flow.dst, slots)
        if decision.kind is not RouteKind.BLOCKED:
            self._bucket_at(duration_slots).entries.append((flow, decision))
        return decision

    # -- batched admission ---------------------------------------------------------

    def offer_batch(self, flows: FlowBatch | list[Flow],
                    duration_slots: int = 1) -> BatchDecisions:
        """Admit one slot's flows through the vectorized hot path.

        Accepts a :class:`FlowBatch` natively (the object-free form
        the generators emit); ``list[Flow]`` inputs are converted at
        the boundary. Sequential admission is replayed exactly: flows
        are scanned in order, the maximal prefix that fits its direct
        wavelengths (per-pair grouped cumulative demand against the
        free-slot counts) is bulk-admitted with one scatter
        allocation, the first non-direct flow is routed through the
        :meth:`IndirectRouter.route_tokens` fallback (same allocator
        mutations and RNG consumption as the scalar router, one
        vectorized candidate scan per overflow flow), and the scan
        resumes after it. Direct admissions only consume their own
        pair's capacity, so the prefix check is exact; indirect
        reservations can touch any pair, which is why the scan stops
        and recomputes at each residual flow.

        Every admitted flow — direct or indirect — lives on as rows
        of a :class:`_DirectBatch` token store, so expiry and plane
        failures on the batched path stay pure array compaction with
        no per-flow Python objects.
        """
        batch = FlowBatch.from_flows(flows)
        n = len(batch)
        kinds = np.empty(n, dtype=np.uint8)
        hops = np.zeros(n, dtype=np.int64)
        gbps = batch.gbps
        if n == 0:
            return BatchDecisions(kinds=kinds, hops=hops, gbps=gbps)
        src = batch.src
        dst = batch.dst
        # Same endpoint validation the scalar path gets from
        # WavelengthAllocator._check (numpy would otherwise wrap
        # negative indices silently).
        if (min(src.min(), dst.min()) < 0
                or max(src.max(), dst.max()) >= self.n_nodes):
            raise ValueError("flow endpoint out of range")
        slots = batch.slots(self.slot_gbps)
        pid = src * self.allocator.n_nodes + dst
        bucket = self._bucket_at(duration_slots)
        # Sub-slot tokens of router-carried (indirect) flows, flushed
        # as one _DirectBatch after the scan; flow ids are batch
        # indices, so the whole flow drops together on plane failure.
        tok_src: list[int] = []
        tok_dst: list[int] = []
        tok_plane: list[int] = []
        tok_flow: list[int] = []

        start = 0
        while start < n:
            stop = self._admit_direct_prefix(pid, slots, start, bucket)
            kinds[start:stop] = DIRECT
            hops[start:stop] = 1
            if stop >= n:
                break
            # First flow the direct wavelengths cannot absorb: route it
            # exactly as the scalar path would (same allocator state,
            # same RNG draws), then rescan the remainder.
            code, n_hops, reservations = self.router.route_tokens(
                int(src[stop]), int(dst[stop]), int(slots[stop]))
            kinds[stop] = code
            hops[stop] = n_hops
            for (a, b, planes) in reservations:
                tok_src.extend([a] * len(planes))
                tok_dst.extend([b] * len(planes))
                tok_plane.extend(planes)
                tok_flow.extend([stop] * len(planes))
            start = stop + 1
        if tok_src:
            bucket.batches.append(_DirectBatch(
                src=np.asarray(tok_src, dtype=np.int64),
                dst=np.asarray(tok_dst, dtype=np.int64),
                plane=np.asarray(tok_plane, dtype=np.int64),
                flow=np.asarray(tok_flow, dtype=np.int64)))
        return BatchDecisions(kinds=kinds, hops=hops, gbps=gbps)

    def _admit_direct_prefix(self, pid: np.ndarray, slots: np.ndarray,
                             start: int, bucket: _ExpiryBucket) -> int:
        """Bulk-admit the maximal direct-capable prefix from ``start``.

        Returns the absolute index of the first flow that does *not*
        fit its direct wavelengths (== ``len(pid)`` when everything
        fits). Flows in ``[start, stop)`` are allocated exactly as
        sequential least-loaded ``allocate`` calls would.
        """
        alloc = self.allocator
        n_nodes = alloc.n_nodes
        seg_pid = pid[start:]
        seg_slots = slots[start:]
        # Group the segment by pair, order-preserving within each pair.
        order = np.argsort(seg_pid, kind="stable")
        s_pid = seg_pid[order]
        s_slots = seg_slots[order]
        new_group = np.empty(len(s_pid), dtype=bool)
        new_group[0] = True
        np.not_equal(s_pid[1:], s_pid[:-1], out=new_group[1:])
        group_start = np.flatnonzero(new_group)
        group_sizes = np.diff(np.append(group_start, len(s_pid)))
        # Inclusive per-pair cumulative demand, in flow order.
        cumulative = np.cumsum(s_slots)
        base = (cumulative - s_slots)[group_start]
        within = cumulative - np.repeat(base, group_sizes)
        # Free-slot matrix entries for the pairs present, computed once.
        u_pid = s_pid[group_start]
        u_src, u_dst = np.divmod(u_pid, n_nodes)
        total = alloc.healthy_planes * alloc.flows_per_wavelength
        u_free = total - alloc._occupancy[u_src, u_dst].sum(axis=1)
        ok_sorted = within <= np.repeat(u_free, group_sizes)
        ok = np.empty(len(s_pid), dtype=bool)
        ok[order] = ok_sorted
        bad = np.flatnonzero(~ok)
        stop = start + (int(bad[0]) if bad.size else len(s_pid))
        if stop == start:
            return stop

        # Scatter-allocate the admitted prefix, grouped by pair. When
        # the whole segment fit (the hot case under uniform load) the
        # scan's grouping is reused instead of re-sorting the prefix.
        if stop - start == len(s_pid):
            adm_order, p_slots = order, s_slots
            g_start = group_start
            g_src, g_dst = u_src, u_dst
        else:
            adm_pid = pid[start:stop]
            adm_order = np.argsort(adm_pid, kind="stable")
            p_pid = adm_pid[adm_order]
            p_slots = slots[start:stop][adm_order]
            first = np.empty(len(p_pid), dtype=bool)
            first[0] = True
            np.not_equal(p_pid[1:], p_pid[:-1], out=first[1:])
            g_start = np.flatnonzero(first)
            g_src, g_dst = np.divmod(p_pid[g_start], n_nodes)
        totals = np.add.reduceat(p_slots, g_start)
        seq = alloc.allocate_pairs(g_src, g_dst, totals)
        token_mask = np.arange(seq.shape[1])[None, :] < totals[:, None]
        # Assignment-ordered tokens are flow-major within each pair, so
        # repeating flow ids by their slot counts labels every token.
        bucket.batches.append(_DirectBatch(
            src=g_src.repeat(totals), dst=g_dst.repeat(totals),
            plane=seq[token_mask],
            flow=(start + adm_order).repeat(p_slots)))
        self.router.stats[RouteKind.DIRECT] += stop - start
        return stop

    # -- snapshot / restore ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-stable capture of every piece of mutable run state.

        Covers the slot clock, wavelength occupancy, failed planes,
        the piggyback boards (including their jitter phases), the
        router's RNG/stats, and the expiry buckets holding every
        in-flight flow — enough that ``restore(snapshot())`` on a
        freshly constructed (even differently seeded) simulator of the
        same shape continues *bit-identically* to a run that never
        stopped. Bucket insertion order is preserved through the JSON
        round trip so drain/failure scans walk flows in the original
        order. The dict survives the result cache's JSON encoding
        losslessly, which is what lets chunked scenario replays carry
        in-flight flows across checkpoint boundaries.
        """
        return {
            "config": self._snapshot_config(),
            "now": self._now,
            "allocator": self.allocator.snapshot(),
            "state": (None if self.state is None
                      else self.state.snapshot()),
            "router": self.router.snapshot(),
            "buckets": {str(expiry): bucket.to_dict()
                        for expiry, bucket in self._buckets.items()},
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts).

        The receiving simulator must be configured identically to the
        one the snapshot was taken from — restoring only replaces
        mutable state, never structure.
        """
        config = state["config"]
        mine = self._snapshot_config()
        if config != mine:
            differing = sorted(k for k in set(config) | set(mine)
                               if config.get(k) != mine.get(k))
            raise ValueError(
                f"snapshot config does not match simulator config "
                f"(differing fields: {differing}): snapshot {config} "
                f"vs simulator {mine}")
        self._now = int(state["now"])
        self.allocator.restore(state["allocator"])
        if self.state is not None:
            self.state.restore(state["state"])
        self.router.restore(state["router"])
        self._buckets = {int(expiry): _ExpiryBucket.from_dict(bucket)
                         for expiry, bucket in state["buckets"].items()}

    def _snapshot_config(self) -> dict:
        """Structural identity a snapshot must match to be restorable."""
        return {"n_nodes": self.n_nodes, "planes": self.planes,
                "flows_per_wavelength": self.flows_per_wavelength,
                "gbps_per_wavelength": self.gbps_per_wavelength,
                "state_update_period": self.state_update_period,
                "track_state": self.track_state}

    # -- time ----------------------------------------------------------------------

    def step(self) -> None:
        """Advance one slot: retire expired flows, age piggyback state."""
        self._now += 1
        bucket = self._buckets.pop(self._now, None)
        if bucket is not None:
            bucket.release(self.router, self.allocator)
        if self.state is not None:
            self.state.step()

    # -- batch experiment ------------------------------------------------------------

    def run(self, flow_batches: list[list[Flow]],
            duration_slots: int = 4) -> SimulationReport:
        """Offer one batch of flows per slot and aggregate statistics.

        Dispatches to the vectorized batch-admission hot path unless
        ``batch_admission`` is off; both paths return bit-identical
        reports for the same seed.
        """
        if self.batch_admission:
            return self._run_batched(flow_batches, duration_slots)
        return self._run_scalar(flow_batches, duration_slots)

    def _run_scalar(self, flow_batches: list[list[Flow]],
                    duration_slots: int) -> SimulationReport:
        """Reference per-flow admission loop (the pre-batching path)."""
        report = SimulationReport()
        for batch in flow_batches:
            for flow in batch:
                decision = self.offer(flow, duration_slots)
                report.offered += 1
                report.offered_gbps += flow.gbps
                hops = decision.hops
                report.hop_histogram[hops] = (
                    report.hop_histogram.get(hops, 0) + 1)
                if decision.kind is RouteKind.DIRECT:
                    report.carried_direct += 1
                    report.carried_gbps += flow.gbps
                elif decision.kind is RouteKind.INDIRECT:
                    report.carried_indirect += 1
                    report.carried_gbps += flow.gbps
                elif decision.kind is RouteKind.DOUBLE_INDIRECT:
                    report.carried_double += 1
                    report.carried_gbps += flow.gbps
                else:
                    report.blocked += 1
            self.step()
            report.slots += 1
        report.stale_mispredictions = self.router.stale_mispredictions
        return report

    def _run_batched(self, flow_batches: list[list[Flow]],
                     duration_slots: int) -> SimulationReport:
        report = SimulationReport()
        histogram = report.hop_histogram
        for batch in flow_batches:
            decisions = self.offer_batch(batch, duration_slots)
            carried = decisions.carried_mask
            report.offered += len(batch)
            report.offered_gbps = sequential_sum(
                report.offered_gbps, decisions.gbps)
            report.carried_gbps = sequential_sum(
                report.carried_gbps, decisions.gbps[carried])
            counts = np.bincount(decisions.kinds, minlength=4)
            report.carried_direct += int(counts[DIRECT])
            report.carried_indirect += int(counts[INDIRECT])
            report.carried_double += int(counts[DOUBLE_INDIRECT])
            report.blocked += int(counts[BLOCKED])
            hop_values, hop_counts = np.unique(decisions.hops,
                                               return_counts=True)
            for hops, count in zip(hop_values.tolist(),
                                   hop_counts.tolist()):
                histogram[hops] = histogram.get(hops, 0) + count
            self.step()
            report.slots += 1
        report.stale_mispredictions = self.router.stale_mispredictions
        return report

    def drain(self) -> None:
        """Release every active flow (end of experiment)."""
        for bucket in self._buckets.values():
            bucket.release(self.router, self.allocator)
        self._buckets.clear()

    # -- failure injection ---------------------------------------------------------

    def fail_plane(self, plane: int) -> int:
        """Take a plane out of service mid-run (device failure).

        Active flows with any reservation on the failed plane are
        dropped — their surviving-plane reservations are released so
        capacity accounting stays exact (the allocator already zeroes
        the failed plane's occupancy). Returns how many flows were
        dropped; callers model their retry as fresh offers.

        Bulk-admitted flows are scanned vectorized (one mask over each
        batch's token arrays); only the few router-carried flows still
        walk their per-flow reservation tuples.
        """
        self.allocator.fail_plane(plane)
        dropped = 0
        for bucket in self._buckets.values():
            survivors = []
            for (flow, decision) in bucket.entries:
                planes_used = {p for (_, _, used) in decision.reservations
                               for p in used}
                if plane in planes_used:
                    dropped += 1
                    for (a, b, used) in decision.reservations:
                        live = [p for p in used if p != plane]
                        if live:
                            self.allocator.release(a, b, live)
                else:
                    survivors.append((flow, decision))
            bucket.entries = survivors
            for batch in bucket.batches:
                dropped += batch.drop_plane(self.allocator, plane)
        return dropped

    def repair_plane(self, plane: int) -> None:
        """Return a failed plane to service."""
        self.allocator.repair_plane(plane)
