"""Flow-level slot simulator for the AWGR fabric (§IV, §VI-A).

The simulator advances in discrete slots. Each slot it admits arriving
flows through the :class:`~repro.network.routing.IndirectRouter`,
retires expiring flows, and steps the piggyback state so views age
realistically. It reports how traffic was carried (direct / indirect /
two-intermediate fallback / blocked), delivered bandwidth, and latency
statistics derived from the rack latency model.

This is deliberately a *flow-level* model, not a packet simulator: the
paper's §VI-A argument is about whether wavelength capacity exists for
each demand, which flow-level admission captures, while packet effects
are subsumed in the fixed 35 ns latency adder evaluated separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.network.routing import IndirectRouter, RouteDecision, RouteKind
from repro.network.state import PiggybackState
from repro.network.traffic import Flow
from repro.network.wavelength import WavelengthAllocator


@dataclass
class SimulationReport:
    """Aggregate results of one simulation run."""

    slots: int = 0
    offered: int = 0
    carried_direct: int = 0
    carried_indirect: int = 0
    carried_double: int = 0
    blocked: int = 0
    offered_gbps: float = 0.0
    carried_gbps: float = 0.0
    stale_mispredictions: int = 0
    hop_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def carried(self) -> int:
        """All flows that found capacity."""
        return self.carried_direct + self.carried_indirect + self.carried_double

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of offered flows carried."""
        return self.carried / self.offered if self.offered else 1.0

    @property
    def throughput_ratio(self) -> float:
        """Fraction of offered bandwidth carried."""
        return (self.carried_gbps / self.offered_gbps
                if self.offered_gbps else 1.0)

    @property
    def indirect_fraction(self) -> float:
        """Fraction of carried flows that needed any indirection."""
        if not self.carried:
            return 0.0
        return (self.carried_indirect + self.carried_double) / self.carried

    def as_dict(self) -> dict:
        """Plain-dict view for report rendering."""
        return {
            "slots": self.slots,
            "offered": self.offered,
            "carried": self.carried,
            "direct": self.carried_direct,
            "indirect": self.carried_indirect,
            "double_indirect": self.carried_double,
            "blocked": self.blocked,
            "acceptance_ratio": self.acceptance_ratio,
            "throughput_ratio": self.throughput_ratio,
            "indirect_fraction": self.indirect_fraction,
            "stale_mispredictions": self.stale_mispredictions,
        }


@dataclass
class AWGRNetworkSimulator:
    """Slot-based admission simulator over parallel AWGR planes.

    Parameters
    ----------
    n_nodes:
        Attached endpoints (MCMs).
    planes:
        Parallel AWGR planes (direct wavelengths per pair).
    flows_per_wavelength:
        Sub-slot multiplexing granularity.
    gbps_per_wavelength:
        Line rate per wavelength.
    state_update_period:
        Piggyback broadcast period in slots (1 = fresh state).
    track_state:
        When false, skip the per-node piggyback boards and route with
        perfect information. The boards cost O(N^2) memory *per node*,
        so rack-scale (350-MCM) feasibility checks should disable them;
        staleness studies on smaller fabrics keep them on.
    """

    n_nodes: int
    planes: int = 5
    flows_per_wavelength: int = 8
    gbps_per_wavelength: float = 25.0
    state_update_period: int = 1
    rng_seed: int = 0
    track_state: bool = True

    def __post_init__(self) -> None:
        self.allocator = WavelengthAllocator(
            n_nodes=self.n_nodes, planes=self.planes,
            flows_per_wavelength=self.flows_per_wavelength,
            gbps_per_wavelength=self.gbps_per_wavelength)
        self.state = None
        if self.track_state:
            self.state = PiggybackState(
                self.allocator, update_period=self.state_update_period,
                rng_seed=self.rng_seed)
        self.router = IndirectRouter(
            self.allocator, state=self.state, rng_seed=self.rng_seed)
        self._active: list[tuple[int, Flow, RouteDecision]] = []
        self._now = 0

    @property
    def slot_gbps(self) -> float:
        """Bandwidth of one sub-slot."""
        return self.gbps_per_wavelength / self.flows_per_wavelength

    # -- single-shot admission -----------------------------------------------------

    def offer(self, flow: Flow, duration_slots: int = 1) -> RouteDecision:
        """Admit one flow now; it retires after ``duration_slots``."""
        slots = flow.slots(self.slot_gbps)
        decision = self.router.route_flow(flow.src, flow.dst, slots)
        if decision.kind is not RouteKind.BLOCKED:
            self._active.append((self._now + duration_slots, flow, decision))
        return decision

    def step(self) -> None:
        """Advance one slot: retire expired flows, age piggyback state."""
        self._now += 1
        still_active = []
        for (expiry, flow, decision) in self._active:
            if expiry <= self._now:
                self.router.release(decision)
            else:
                still_active.append((expiry, flow, decision))
        self._active = still_active
        if self.state is not None:
            self.state.step()

    # -- batch experiment ------------------------------------------------------------

    def run(self, flow_batches: list[list[Flow]],
            duration_slots: int = 4) -> SimulationReport:
        """Offer one batch of flows per slot and aggregate statistics."""
        report = SimulationReport()
        for batch in flow_batches:
            for flow in batch:
                decision = self.offer(flow, duration_slots)
                report.offered += 1
                report.offered_gbps += flow.gbps
                hops = decision.hops
                report.hop_histogram[hops] = (
                    report.hop_histogram.get(hops, 0) + 1)
                if decision.kind is RouteKind.DIRECT:
                    report.carried_direct += 1
                    report.carried_gbps += flow.gbps
                elif decision.kind is RouteKind.INDIRECT:
                    report.carried_indirect += 1
                    report.carried_gbps += flow.gbps
                elif decision.kind is RouteKind.DOUBLE_INDIRECT:
                    report.carried_double += 1
                    report.carried_gbps += flow.gbps
                else:
                    report.blocked += 1
            self.step()
            report.slots += 1
        report.stale_mispredictions = self.router.stale_mispredictions
        return report

    def drain(self) -> None:
        """Release every active flow (end of experiment)."""
        for (_, _, decision) in self._active:
            self.router.release(decision)
        self._active.clear()

    # -- failure injection ---------------------------------------------------------

    def fail_plane(self, plane: int) -> int:
        """Take a plane out of service mid-run (device failure).

        Active flows with any reservation on the failed plane are
        dropped — their surviving-plane reservations are released so
        capacity accounting stays exact (the allocator already zeroes
        the failed plane's occupancy). Returns how many flows were
        dropped; callers model their retry as fresh offers.
        """
        self.allocator.fail_plane(plane)
        survivors = []
        dropped = 0
        for (expiry, flow, decision) in self._active:
            planes_used = {p for (_, _, used) in decision.reservations
                           for p in used}
            if plane in planes_used:
                dropped += 1
                for (a, b, used) in decision.reservations:
                    live = [p for p in used if p != plane]
                    if live:
                        self.allocator.release(a, b, live)
            else:
                survivors.append((expiry, flow, decision))
        self._active = survivors
        return dropped

    def repair_plane(self, plane: int) -> None:
        """Return a failed plane to service."""
        self.allocator.repair_plane(plane)
