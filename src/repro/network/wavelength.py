"""Wavelength occupancy tracking for parallel AWGR planes (§IV-A).

An N-port AWGR dedicates exactly one wavelength to each ordered
(source, destination) port pair, so with P parallel planes a source has
P wavelengths toward each destination (ignoring extra-plane derating).
The :class:`WavelengthAllocator` tracks which of those wavelengths are
occupied by flows and supports the capacity queries the indirect
router needs ("is the direct wavelength from 7 to 3 free?").

Occupancy is tracked at flow granularity: each wavelength carries up to
``flows_per_wavelength`` multiplexed flows (the paper's example encodes
8 sub-slots per wavelength in the piggybacked status vector).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class WavelengthAllocator:
    """Tracks per-(src, dst, plane) wavelength occupancy.

    Parameters
    ----------
    n_nodes:
        Attached MCM/endpoint count.
    planes:
        Parallel AWGR planes; each contributes one wavelength per
        ordered pair.
    flows_per_wavelength:
        Multiplexing sub-slots per wavelength (8 in the paper's
        status-vector sizing).
    gbps_per_wavelength:
        Line rate of one wavelength.
    """

    n_nodes: int
    planes: int = 5
    flows_per_wavelength: int = 8
    gbps_per_wavelength: float = 25.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if self.planes <= 0:
            raise ValueError("planes must be positive")
        if self.flows_per_wavelength <= 0:
            raise ValueError("flows_per_wavelength must be positive")
        # occupancy[src, dst, plane] = sub-slots in use on that wavelength.
        self._occupancy = np.zeros(
            (self.n_nodes, self.n_nodes, self.planes), dtype=np.int32)
        self._failed_planes: set[int] = set()

    # -- queries --------------------------------------------------------------

    def used_slots(self, src: int, dst: int) -> int:
        """Sub-slots in use across all planes for the pair."""
        self._check(src, dst)
        return int(self._occupancy[src, dst].sum())

    def free_slots(self, src: int, dst: int) -> int:
        """Free sub-slots across all planes for the pair."""
        self._check(src, dst)
        total = self.healthy_planes * self.flows_per_wavelength
        return total - self.used_slots(src, dst)

    def free_wavelengths(self, src: int, dst: int) -> int:
        """Healthy wavelengths with no occupancy at all for the pair."""
        self._check(src, dst)
        return sum(1 for p in range(self.planes)
                   if p not in self._failed_planes
                   and self._occupancy[src, dst, p] == 0)

    def has_capacity(self, src: int, dst: int, slots: int = 1) -> bool:
        """Can the pair absorb ``slots`` more sub-slots?"""
        return self.free_slots(src, dst) >= slots

    def pair_free_gbps(self, src: int, dst: int) -> float:
        """Unused direct bandwidth between the pair."""
        per_slot = self.gbps_per_wavelength / self.flows_per_wavelength
        return self.free_slots(src, dst) * per_slot

    def free_slots_from(self, src: int) -> np.ndarray:
        """(n_nodes,) free sub-slots from ``src`` toward every node."""
        self._check(src, 0)
        total = self.healthy_planes * self.flows_per_wavelength
        return total - self._occupancy[src].sum(axis=1)

    def free_slots_to(self, dst: int) -> np.ndarray:
        """(n_nodes,) free sub-slots from every node toward ``dst``."""
        self._check(0, dst)
        total = self.healthy_planes * self.flows_per_wavelength
        return total - self._occupancy[:, dst].sum(axis=1)

    def occupancy_bitmap(self, src: int) -> np.ndarray:
        """(n_nodes,) bool array: fully-occupied direct paths from src.

        This is the one-hot status vector a source piggybacks (§IV-A):
        bit d set means the source's wavelengths toward d are all busy.
        """
        self._check(src, 0)
        total = self.healthy_planes * self.flows_per_wavelength
        return self._occupancy[src].sum(axis=1) >= total

    def slot_bitmap(self, src: int) -> np.ndarray:
        """(n_nodes,) int array of used sub-slots from ``src``.

        The richer multi-bit status vector ("8 bits per wavelength ...
        256 bytes" in the paper's sizing example).
        """
        self._check(src, 0)
        return self._occupancy[src].sum(axis=1).copy()

    # -- mutation --------------------------------------------------------------

    def allocate(self, src: int, dst: int, slots: int = 1) -> list[int]:
        """Occupy ``slots`` sub-slots on the pair's least-loaded planes.

        Returns the plane indices used (one entry per slot). Raises
        ``RuntimeError`` when capacity is insufficient — callers must
        check :meth:`has_capacity` (or catch) to model blocking.
        """
        self._check(src, dst)
        if slots <= 0:
            raise ValueError("slots must be positive")
        if not self.has_capacity(src, dst, slots):
            raise RuntimeError(
                f"no capacity for {slots} slots on pair ({src}, {dst})")
        used: list[int] = []
        occ = self._occupancy[src, dst]
        healthy = [p for p in range(self.planes)
                   if p not in self._failed_planes]
        for _ in range(slots):
            plane = min(healthy, key=lambda p: occ[p])
            occ[plane] += 1
            used.append(plane)
        return used

    def release(self, src: int, dst: int, planes: list[int]) -> None:
        """Release previously allocated sub-slots."""
        self._check(src, dst)
        for plane in planes:
            if not 0 <= plane < self.planes:
                raise ValueError(f"plane {plane} out of range")
            if self._occupancy[src, dst, plane] <= 0:
                raise RuntimeError(
                    f"release underflow on ({src}, {dst}) plane {plane}")
            self._occupancy[src, dst, plane] -= 1

    def reset(self) -> None:
        """Clear all occupancy (failed planes stay failed)."""
        self._occupancy.fill(0)

    # -- failure injection -------------------------------------------------------

    @property
    def healthy_planes(self) -> int:
        """Planes currently in service."""
        return self.planes - len(self._failed_planes)

    @property
    def failed_planes(self) -> frozenset[int]:
        """Indices of failed planes."""
        return frozenset(self._failed_planes)

    def fail_plane(self, plane: int) -> list[tuple[int, int, int]]:
        """Take an AWGR plane out of service (device failure).

        Returns the (src, dst, slots) occupancy that was riding the
        plane — those flows are dropped and must be re-routed by the
        caller. At least one plane must remain healthy.
        """
        if not 0 <= plane < self.planes:
            raise ValueError(f"plane {plane} out of range")
        if plane in self._failed_planes:
            raise RuntimeError(f"plane {plane} already failed")
        if self.healthy_planes <= 1:
            raise RuntimeError("cannot fail the last healthy plane")
        dropped = []
        occ = self._occupancy[:, :, plane]
        for src, dst in zip(*np.nonzero(occ)):
            dropped.append((int(src), int(dst), int(occ[src, dst])))
        occ.fill(0)
        self._failed_planes.add(plane)
        return dropped

    def repair_plane(self, plane: int) -> None:
        """Return a failed plane to service."""
        if plane not in self._failed_planes:
            raise RuntimeError(f"plane {plane} is not failed")
        self._failed_planes.discard(plane)

    # -- utilization metrics ----------------------------------------------------

    def utilization(self) -> float:
        """Fraction of healthy sub-slots in use (diagonal excluded)."""
        total = (self.n_nodes * (self.n_nodes - 1)
                 * self.healthy_planes * self.flows_per_wavelength)
        diag = sum(int(self._occupancy[i, i].sum())
                   for i in range(self.n_nodes))
        return (int(self._occupancy.sum()) - diag) / total

    def _check(self, src: int, dst: int) -> None:
        if not 0 <= src < self.n_nodes:
            raise ValueError(f"src {src} out of range")
        if not 0 <= dst < self.n_nodes:
            raise ValueError(f"dst {dst} out of range")
