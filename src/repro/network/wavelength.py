"""Wavelength occupancy tracking for parallel AWGR planes (§IV-A).

An N-port AWGR dedicates exactly one wavelength to each ordered
(source, destination) port pair, so with P parallel planes a source has
P wavelengths toward each destination (ignoring extra-plane derating).
The :class:`WavelengthAllocator` tracks which of those wavelengths are
occupied by flows and supports the capacity queries the indirect
router needs ("is the direct wavelength from 7 to 3 free?").

Occupancy is tracked at flow granularity: each wavelength carries up to
``flows_per_wavelength`` multiplexed flows (the paper's example encodes
8 sub-slots per wavelength in the piggybacked status vector).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Token value assigned to failed planes so least-loaded selection can
#: never pick them. Far above any real occupancy yet small enough that
#: ``value * planes + plane`` stays well inside int64.
_UNAVAILABLE = np.int64(1) << 40


def _scatter_add(target: np.ndarray, flat_indices: np.ndarray,
                 delta: int) -> None:
    """Add ``delta`` at (possibly repeated) flat indices of ``target``.

    ``np.unique`` collapses repeats to counts so the update is one
    fancy-indexed add instead of a slow ``ufunc.at`` over every token.
    """
    unique, counts = np.unique(flat_indices, return_counts=True)
    flat = target.reshape(-1)
    flat[unique] += (delta * counts).astype(flat.dtype)


@dataclass
class WavelengthAllocator:
    """Tracks per-(src, dst, plane) wavelength occupancy.

    Parameters
    ----------
    n_nodes:
        Attached MCM/endpoint count.
    planes:
        Parallel AWGR planes; each contributes one wavelength per
        ordered pair.
    flows_per_wavelength:
        Multiplexing sub-slots per wavelength (8 in the paper's
        status-vector sizing).
    gbps_per_wavelength:
        Line rate of one wavelength.
    """

    n_nodes: int
    planes: int = 5
    flows_per_wavelength: int = 8
    gbps_per_wavelength: float = 25.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if self.planes <= 0:
            raise ValueError("planes must be positive")
        if self.flows_per_wavelength <= 0:
            raise ValueError("flows_per_wavelength must be positive")
        # occupancy[src, dst, plane] = sub-slots in use on that wavelength.
        self._occupancy = np.zeros(
            (self.n_nodes, self.n_nodes, self.planes), dtype=np.int32)
        self._failed_planes: set[int] = set()
        # Boolean in-service mask, kept in sync with _failed_planes so
        # the vectorized paths never rebuild per-call plane lists.
        self._healthy = np.ones(self.planes, dtype=bool)

    # -- queries --------------------------------------------------------------

    def used_slots(self, src: int, dst: int) -> int:
        """Sub-slots in use across all planes for the pair."""
        self._check(src, dst)
        return int(self._occupancy[src, dst].sum())

    def free_slots(self, src: int, dst: int) -> int:
        """Free sub-slots across all planes for the pair."""
        self._check(src, dst)
        total = self.healthy_planes * self.flows_per_wavelength
        return total - self.used_slots(src, dst)

    def free_wavelengths(self, src: int, dst: int) -> int:
        """Healthy wavelengths with no occupancy at all for the pair."""
        self._check(src, dst)
        return int(np.count_nonzero(
            (self._occupancy[src, dst] == 0) & self._healthy))

    def has_capacity(self, src: int, dst: int, slots: int = 1) -> bool:
        """Can the pair absorb ``slots`` more sub-slots?"""
        return self.free_slots(src, dst) >= slots

    def pair_free_gbps(self, src: int, dst: int) -> float:
        """Unused direct bandwidth between the pair."""
        per_slot = self.gbps_per_wavelength / self.flows_per_wavelength
        return self.free_slots(src, dst) * per_slot

    def free_slots_from(self, src: int) -> np.ndarray:
        """(n_nodes,) free sub-slots from ``src`` toward every node."""
        self._check(src, 0)
        total = self.healthy_planes * self.flows_per_wavelength
        return total - self._occupancy[src].sum(axis=1)

    def free_slots_to(self, dst: int) -> np.ndarray:
        """(n_nodes,) free sub-slots from every node toward ``dst``."""
        self._check(0, dst)
        total = self.healthy_planes * self.flows_per_wavelength
        return total - self._occupancy[:, dst].sum(axis=1)

    def occupancy_bitmap(self, src: int) -> np.ndarray:
        """(n_nodes,) bool array: fully-occupied direct paths from src.

        This is the one-hot status vector a source piggybacks (§IV-A):
        bit d set means the source's wavelengths toward d are all busy.
        """
        self._check(src, 0)
        total = self.healthy_planes * self.flows_per_wavelength
        return self._occupancy[src].sum(axis=1) >= total

    def slot_bitmap(self, src: int) -> np.ndarray:
        """(n_nodes,) int array of used sub-slots from ``src``.

        The richer multi-bit status vector ("8 bits per wavelength ...
        256 bytes" in the paper's sizing example).
        """
        self._check(src, 0)
        return self._occupancy[src].sum(axis=1).copy()

    def slot_bitmaps(self, srcs: np.ndarray) -> np.ndarray:
        """(len(srcs), n_nodes) used sub-slot counts, one row per
        source — the batched form of :meth:`slot_bitmap`, used to
        deliver a whole slot's due status broadcasts at once."""
        srcs = np.asarray(srcs, dtype=np.intp)
        if srcs.size and (srcs.min() < 0 or srcs.max() >= self.n_nodes):
            raise IndexError("source index out of range")
        return self._occupancy[srcs].sum(axis=2)

    # -- mutation --------------------------------------------------------------

    def allocate(self, src: int, dst: int, slots: int = 1) -> list[int]:
        """Occupy ``slots`` sub-slots on the pair's least-loaded planes.

        Returns the plane indices used (one entry per slot). Raises
        ``RuntimeError`` when capacity is insufficient — callers must
        check :meth:`has_capacity` (or catch) to model blocking.

        Least-loaded fill is computed in closed form instead of a
        per-slot ``min()`` loop: the t-th sub-slot of a sequential fill
        always takes the t-th smallest token ``(occupancy + j, plane)``
        over planes ``p`` and increments ``j``, so selecting the
        ``slots`` smallest tokens (``argpartition``) and ordering them
        reproduces the sequential assignment exactly, ties broken
        toward the lowest plane index.
        """
        self._check(src, dst)
        if slots <= 0:
            raise ValueError("slots must be positive")
        if not self.has_capacity(src, dst, slots):
            raise RuntimeError(
                f"no capacity for {slots} slots on pair ({src}, {dst})")
        occ = self._occupancy[src, dst]
        if slots == 1:
            plane = int(np.argmin(
                np.where(self._healthy, occ, _UNAVAILABLE)))
            occ[plane] += 1
            return [plane]
        p = self.planes
        vals = occ.astype(np.int64)[:, None] + np.arange(
            slots, dtype=np.int64)[None, :]
        vals[~self._healthy] = _UNAVAILABLE
        keys = (vals * p
                + np.arange(p, dtype=np.int64)[:, None]).reshape(-1)
        take = np.argpartition(keys, slots - 1)[:slots]
        take = take[np.argsort(keys[take])]
        used = take // slots  # keys laid out plane-major
        _scatter_add(occ, used, 1)
        return used.tolist()

    def allocate_pairs(self, src: np.ndarray, dst: np.ndarray,
                       totals: np.ndarray) -> np.ndarray:
        """Bulk least-loaded allocation over *distinct* (src, dst) pairs.

        Replays, in one vectorized shot, exactly what sequential
        :meth:`allocate` calls totalling ``totals[u]`` sub-slots on
        each pair would do (same token argument as :meth:`allocate`).
        Returns an ``(len(src), totals.max())`` int array whose row
        ``u`` lists the planes in assignment order, padded with -1.
        Occupancy is updated in place.

        Callers must guarantee pair distinctness, positive totals, and
        per-pair capacity — this is the trusted inner loop of
        :meth:`repro.network.simulator.AWGRNetworkSimulator.offer_batch`.
        """
        max_total = int(totals.max())
        p = self.planes
        if max_total == 1:
            # Hot case (single sub-slot per pair): the token sort
            # degenerates to one least-loaded argmin per pair.
            occ = self._occupancy[src, dst]
            plane = np.where(self._healthy, occ, _UNAVAILABLE).argmin(axis=1)
            _scatter_add(self._occupancy,
                         (src * self.n_nodes + dst) * p + plane, 1)
            return plane[:, None]
        seq = np.full((len(src), max_total), -1, dtype=np.int64)
        single = totals == 1
        if single.any():
            seq[single, :1] = self.allocate_pairs(
                src[single], dst[single], totals[single])
        multi = np.flatnonzero(~single)
        m = len(multi)
        m_src, m_dst, m_totals = src[multi], dst[multi], totals[multi]
        occ = self._occupancy[m_src, m_dst].astype(np.int64)  # (m, p)
        vals = occ[:, :, None] + np.arange(
            max_total, dtype=np.int64)[None, None, :]
        vals[:, ~self._healthy, :] = _UNAVAILABLE
        keys = (vals * p + np.arange(p, dtype=np.int64)[None, :, None]
                ).reshape(m, p * max_total)
        part = np.argpartition(keys, max_total - 1, axis=1)[:, :max_total]
        sub = np.take_along_axis(keys, part, axis=1)
        idx = np.take_along_axis(part, np.argsort(sub, axis=1), axis=1)
        m_seq = idx // max_total  # keys laid out plane-major per pair
        mask = np.arange(max_total)[None, :] < m_totals[:, None]
        flat = ((m_src.repeat(m_totals) * self.n_nodes
                 + m_dst.repeat(m_totals)) * p + m_seq[mask])
        _scatter_add(self._occupancy, flat, 1)
        m_seq[~mask] = -1
        seq[multi] = m_seq
        return seq

    def release(self, src: int, dst: int, planes: list[int]) -> None:
        """Release previously allocated sub-slots."""
        self._check(src, dst)
        for plane in planes:
            if not 0 <= plane < self.planes:
                raise ValueError(f"plane {plane} out of range")
            if self._occupancy[src, dst, plane] <= 0:
                raise RuntimeError(
                    f"release underflow on ({src}, {dst}) plane {plane}")
            self._occupancy[src, dst, plane] -= 1

    def release_tokens(self, src: np.ndarray, dst: np.ndarray,
                       planes: np.ndarray) -> None:
        """Bulk release of (src, dst, plane) sub-slot tokens.

        The vectorized counterpart of :meth:`release` for the batched
        admission path: one scatter subtract instead of a per-token
        loop, with the same underflow guarantee (checked on the
        touched wavelengths only).
        """
        if len(src) == 0:
            return
        flat_idx = (src * self.n_nodes + dst) * self.planes + planes
        unique, counts = np.unique(flat_idx, return_counts=True)
        flat = self._occupancy.reshape(-1)
        if (flat[unique] < counts).any():
            raise RuntimeError("bulk release underflow")
        flat[unique] -= counts.astype(flat.dtype)

    def reset(self) -> None:
        """Clear all occupancy (failed planes stay failed)."""
        self._occupancy.fill(0)

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-stable capture of all mutable state.

        Occupancy counts and the failed-plane set are the allocator's
        entire mutable surface; everything else is construction-time
        configuration. The dict round-trips losslessly through the
        result cache's JSON encoding (ints only).
        """
        return {"occupancy": self._occupancy.tolist(),
                "failed_planes": sorted(self._failed_planes)}

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts).

        The allocator must have the same dimensions the snapshot was
        taken with; occupancy is copied in place so any views other
        components hold stay valid.
        """
        occupancy = np.asarray(state["occupancy"], dtype=np.int32)
        if occupancy.shape != self._occupancy.shape:
            raise ValueError(
                f"snapshot occupancy shape {occupancy.shape} does not "
                f"match allocator shape {self._occupancy.shape}")
        failed = {int(p) for p in state["failed_planes"]}
        if any(not 0 <= p < self.planes for p in failed):
            raise ValueError("snapshot failed plane out of range")
        self._occupancy[...] = occupancy
        self._failed_planes = failed
        self._healthy = np.ones(self.planes, dtype=bool)
        if failed:
            self._healthy[sorted(failed)] = False

    # -- failure injection -------------------------------------------------------

    @property
    def healthy_planes(self) -> int:
        """Planes currently in service."""
        return self.planes - len(self._failed_planes)

    @property
    def failed_planes(self) -> frozenset[int]:
        """Indices of failed planes."""
        return frozenset(self._failed_planes)

    def fail_plane(self, plane: int) -> list[tuple[int, int, int]]:
        """Take an AWGR plane out of service (device failure).

        Returns the (src, dst, slots) occupancy that was riding the
        plane — those flows are dropped and must be re-routed by the
        caller. At least one plane must remain healthy.
        """
        if not 0 <= plane < self.planes:
            raise ValueError(f"plane {plane} out of range")
        if plane in self._failed_planes:
            raise RuntimeError(f"plane {plane} already failed")
        if self.healthy_planes <= 1:
            raise RuntimeError("cannot fail the last healthy plane")
        occ = self._occupancy[:, :, plane]
        srcs, dsts = np.nonzero(occ)
        dropped = list(zip(srcs.tolist(), dsts.tolist(),
                           occ[srcs, dsts].tolist()))
        occ.fill(0)
        self._failed_planes.add(plane)
        self._healthy[plane] = False
        return dropped

    def repair_plane(self, plane: int) -> None:
        """Return a failed plane to service."""
        if plane not in self._failed_planes:
            raise RuntimeError(f"plane {plane} is not failed")
        self._failed_planes.discard(plane)
        self._healthy[plane] = True

    # -- utilization metrics ----------------------------------------------------

    def utilization(self) -> float:
        """Fraction of healthy sub-slots in use (diagonal excluded)."""
        total = (self.n_nodes * (self.n_nodes - 1)
                 * self.healthy_planes * self.flows_per_wavelength)
        diag = int(np.einsum("iip->", self._occupancy))
        return (int(self._occupancy.sum()) - diag) / total

    def _check(self, src: int, dst: int) -> None:
        if not 0 <= src < self.n_nodes:
            raise ValueError(f"src {src} out of range")
        if not 0 <= dst < self.n_nodes:
            raise ValueError(f"dst {dst} out of range")
