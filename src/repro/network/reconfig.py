"""Reconfigurable fabric model for case (B) — spatial / wave-selective
switches with a centralized scheduler (paper §III-D3, §IV-B, §VI-A).

Unlike AWGRs (passive, all pairs always reachable on one wavelength),
spatial and wave-selective switches must be *configured*: a switch
holds a mapping from (input port, wavelength subset) to output port.
Changing it costs ``reconfig_time`` (tens of ns to tens of ms
depending on technology) during which the affected ports carry no
traffic, and the mapping is computed by a centralized scheduler from a
demand estimate — the overhead and imperfect-decision source the paper
cites for preferring AWGRs.

The model here is wavelength-granular per switch: each of a switch's
ports carries W wavelengths; the scheduler assigns, per input port,
how many of its wavelengths point at each output port. The demand-
driven scheduler is a greedy water-filling heuristic (proportional to
demand, max-min fair for remainders), which is the style of solution a
real controller would compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SwitchConfiguration:
    """One switch's wavelength assignment.

    ``assignment[i, j]`` = wavelengths that input port ``i`` currently
    steers toward output port ``j``. Row sums may not exceed the
    wavelengths per port.
    """

    radix: int
    wavelengths_per_port: int
    assignment: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.radix <= 1:
            raise ValueError("radix must exceed 1")
        if self.wavelengths_per_port <= 0:
            raise ValueError("wavelengths_per_port must be positive")
        if self.assignment is None:
            self.assignment = np.zeros((self.radix, self.radix),
                                       dtype=np.int64)
        self.validate()

    def validate(self) -> None:
        """Check conservation: no port over-commits its wavelengths."""
        if self.assignment.shape != (self.radix, self.radix):
            raise ValueError("assignment has wrong shape")
        if (self.assignment < 0).any():
            raise ValueError("negative wavelength assignment")
        row = self.assignment.sum(axis=1)
        if (row > self.wavelengths_per_port).any():
            raise ValueError("input port over-committed")
        # Wave-selective constraint: an output port cannot receive more
        # wavelengths than it can carry either.
        col = self.assignment.sum(axis=0)
        if (col > self.wavelengths_per_port).any():
            raise ValueError("output port over-committed")

    def pair_gbps(self, src: int, dst: int,
                  gbps_per_wavelength: float = 25.0) -> float:
        """Configured bandwidth from input ``src`` to output ``dst``."""
        return float(self.assignment[src, dst]) * gbps_per_wavelength

    def ports_changed(self, other: "SwitchConfiguration") -> int:
        """Input ports whose steering differs from ``other``.

        Reconfiguration disturbs only the ports whose assignment
        changes; this is what the fabric charges downtime for.
        """
        if other.assignment.shape != self.assignment.shape:
            raise ValueError("configurations have different shapes")
        diff = (self.assignment != other.assignment).any(axis=1)
        return int(np.count_nonzero(diff))


def schedule_demand(demand: np.ndarray, wavelengths_per_port: int,
                    stagger: int = 0) -> np.ndarray:
    """Centralized scheduler: demand matrix -> wavelength assignment.

    Greedy proportional water-filling: each input port splits its
    wavelengths across destinations proportionally to demand (floor),
    then the largest fractional remainders get the leftovers, subject
    to output-port capacity. Zero-demand rows fall back to a uniform
    spread so the fabric retains all-to-all reachability (the paper's
    "small number of ports left unconnected" spirit).

    Parameters
    ----------
    demand:
        (N, N) nonnegative demand estimate (any units; only ratios
        matter). The diagonal is ignored.
    wavelengths_per_port:
        Wavelength budget per input *and* output port.
    stagger:
        Tie-breaking rotation. Parallel switches pass their own index
        here so fractional-remainder leftovers land on *different*
        destination subsets per switch — otherwise every switch makes
        the same choice and the losing pairs get nothing fabric-wide.
    """
    demand = np.asarray(demand, dtype=float)
    if demand.ndim != 2 or demand.shape[0] != demand.shape[1]:
        raise ValueError("demand must be square")
    if (demand < 0).any():
        raise ValueError("demand must be nonnegative")
    n = demand.shape[0]
    w = wavelengths_per_port
    demand = demand.copy()
    np.fill_diagonal(demand, 0.0)

    assignment = np.zeros((n, n), dtype=np.int64)
    out_capacity = np.full(n, w, dtype=np.int64)
    active = [s for s in range(n) if demand[s].sum() > 0]
    idle = [s for s in range(n) if demand[s].sum() <= 0]

    # Pass 1: sources with demand claim output capacity first, so
    # idle sources' reachability fallback cannot starve real traffic.
    for src in active:
        row = demand[src]
        share = row / row.sum() * w
        base = np.floor(share).astype(np.int64)
        base = np.minimum(base, out_capacity)
        assignment[src] = base
        out_capacity -= base
        leftover = w - int(base.sum())
        remainders = share - np.floor(share)
        # Stagger breaks remainder ties (and near-ties) differently on
        # each parallel switch.
        bias = ((np.arange(n) - stagger) % n) / (4.0 * n)
        for dst in np.argsort(-(remainders - bias)):
            if leftover == 0:
                break
            if dst == src or row[dst] <= 0:
                continue
            if out_capacity[dst] > 0:
                assignment[src, dst] += 1
                out_capacity[dst] -= 1
                leftover -= 1

    # Pass 2: idle sources spread one wavelength toward each peer with
    # spare output capacity (all-to-all reachability, §V-B spirit).
    for src in idle:
        budget = w
        for dst in np.argsort(-out_capacity):
            if dst == src or budget == 0:
                continue
            if out_capacity[dst] > 0:
                assignment[src, dst] += 1
                out_capacity[dst] -= 1
                budget -= 1
    return assignment


@dataclass
class ReconfigurableFabric:
    """A bank of parallel reconfigurable switches plus their scheduler.

    Parameters
    ----------
    n_switches, radix, wavelengths_per_port:
        Fabric dimensions (11 x 256 x 256 for the paper's case B).
    gbps_per_wavelength:
        Line rate.
    reconfig_time_s:
        Time one reconfiguration takes (1 ms default — the middle of
        the paper's "tens of nanoseconds to tens of milliseconds").
    scheduler_latency_s:
        Time the centralized scheduler needs to compute and distribute
        a new configuration.
    """

    n_switches: int = 11
    radix: int = 256
    wavelengths_per_port: int = 256
    gbps_per_wavelength: float = 25.0
    reconfig_time_s: float = 1e-3
    scheduler_latency_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.n_switches <= 0:
            raise ValueError("n_switches must be positive")
        if self.reconfig_time_s < 0 or self.scheduler_latency_s < 0:
            raise ValueError("times must be >= 0")
        self.configs = [SwitchConfiguration(self.radix,
                                            self.wavelengths_per_port)
                        for _ in range(self.n_switches)]
        self.reconfigurations = 0
        self.ports_disturbed = 0
        self.time_reconfiguring_s = 0.0

    def reconfigure(self, demand: np.ndarray) -> None:
        """Apply the centralized scheduler to all switches.

        Demand is split evenly across the parallel switches (each sees
        1/n of the traffic), matching how an operator would stripe.
        """
        per_switch = np.asarray(demand, dtype=float) / self.n_switches
        for i, old in enumerate(self.configs):
            stagger = (i * self.radix) // max(1, self.n_switches)
            new = SwitchConfiguration(
                self.radix, self.wavelengths_per_port,
                schedule_demand(per_switch, self.wavelengths_per_port,
                                stagger=stagger))
            self.ports_disturbed += new.ports_changed(old)
            self.configs[i] = new
        self.reconfigurations += 1
        self.time_reconfiguring_s += (self.scheduler_latency_s
                                      + self.reconfig_time_s)

    def snapshot(self) -> dict:
        """JSON-stable capture of the fabric's mutable state.

        Switch count and reconfiguration/scheduler lag are included
        because scenario events mutate them mid-run; the per-switch
        assignments are what the next epoch's served bandwidth depends
        on, and the counters keep availability accounting continuous
        across a checkpoint boundary.
        """
        return {
            "n_switches": self.n_switches,
            "reconfig_time_s": self.reconfig_time_s,
            "scheduler_latency_s": self.scheduler_latency_s,
            "assignments": [cfg.assignment.tolist()
                            for cfg in self.configs],
            "reconfigurations": self.reconfigurations,
            "ports_disturbed": self.ports_disturbed,
            "time_reconfiguring_s": self.time_reconfiguring_s,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts)."""
        assignments = state["assignments"]
        if len(assignments) != int(state["n_switches"]):
            raise ValueError("snapshot switch count does not match "
                             "its assignment list")
        self.n_switches = int(state["n_switches"])
        self.reconfig_time_s = float(state["reconfig_time_s"])
        self.scheduler_latency_s = float(state["scheduler_latency_s"])
        self.configs = [
            SwitchConfiguration(self.radix, self.wavelengths_per_port,
                                np.asarray(a, dtype=np.int64))
            for a in assignments]
        self.reconfigurations = int(state["reconfigurations"])
        self.ports_disturbed = int(state["ports_disturbed"])
        self.time_reconfiguring_s = float(state["time_reconfiguring_s"])

    def pair_gbps(self, src: int, dst: int) -> float:
        """Configured bandwidth between two ports across all switches."""
        return sum(cfg.pair_gbps(src, dst, self.gbps_per_wavelength)
                   for cfg in self.configs)

    def served_fraction(self, demand: np.ndarray) -> float:
        """Fraction of offered demand the current configuration carries.

        min(demand, configured) summed over pairs / total demand.
        """
        demand = np.asarray(demand, dtype=float)
        configured = sum(
            cfg.assignment.astype(float) * self.gbps_per_wavelength
            for cfg in self.configs)
        d = demand.copy()
        np.fill_diagonal(d, 0.0)
        total = d.sum()
        if total <= 0:
            return 1.0
        return float(np.minimum(d, configured).sum() / total)

    def availability(self, window_s: float) -> float:
        """Fraction of a window the fabric was not reconfiguring."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        return max(0.0, 1.0 - self.time_reconfiguring_s / window_s)


def reconfiguration_overhead_ok(job_event_rate_hz: float,
                                reconfig_time_s: float,
                                budget_fraction: float = 0.01) -> bool:
    """§III-D3's feasibility check.

    Jobs start every few seconds and change traffic patterns slowly, so
    even millisecond reconfiguration keeps the fabric busy less than
    ``budget_fraction`` of the time.
    """
    if job_event_rate_hz < 0 or reconfig_time_s < 0:
        raise ValueError("rates and times must be >= 0")
    return job_event_rate_hz * reconfig_time_s <= budget_fraction
