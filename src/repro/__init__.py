"""repro — reproduction of "Efficient Intra-Rack Resource Disaggregation
for HPC Using Co-Packaged DWDM Photonics" (CLUSTER 2023).

Public API layering:

* :mod:`repro.photonics` — DWDM links, optical switches, AWGRs, FEC,
  power (paper §III, Tables I/II).
* :mod:`repro.rack` — chip catalog, baseline rack, MCM packing,
  disaggregated fabric plans (§V, Table III, Fig. 5).
* :mod:`repro.network` — wavelength allocation, indirect routing,
  piggybacked state, flow simulator, electronic comparator (§IV, §VI-D).
* :mod:`repro.cpu` / :mod:`repro.gpu` — performance substrates
  (gem5 / PPT-GPU substitutes, §VI-B).
* :mod:`repro.workloads` — benchmark characterizations and
  production-utilization profiles.
* :mod:`repro.core` — the headline analyses: latency budget, bandwidth
  satisfaction, slowdown studies, electronic comparison, power
  overhead, iso-performance (§VI).
* :mod:`repro.analysis` — statistics and report rendering.
"""

from repro.core.latency import (
    PHOTONIC_BUDGET,
    photonic_disaggregation_latency_ns,
)
from repro.core.slowdown import run_cpu_study, run_gpu_study, suite_summary
from repro.core.comparison import electronic_vs_photonic
from repro.core.power import rack_power_overhead
from repro.core.isoperf import iso_performance_comparison
from repro.rack.design import DisaggregatedRack
from repro.rack.baseline import BaselineRack

__version__ = "1.0.0"

__all__ = [
    "PHOTONIC_BUDGET", "photonic_disaggregation_latency_ns",
    "run_cpu_study", "run_gpu_study", "suite_summary",
    "electronic_vs_photonic", "rack_power_overhead",
    "iso_performance_comparison", "DisaggregatedRack", "BaselineRack",
    "__version__",
]
