"""Cache hierarchy models.

Two complementary simulators:

* :class:`SetAssociativeCache` — an exact set-associative LRU cache
  operating on byte addresses. Slow (pure Python) but trustworthy;
  the test suite uses it to validate the fast model on small traces.
* :func:`simulate_hierarchy` — a vectorized stack-distance model: an
  access whose LRU stack distance (in lines) fits within a level's
  effective capacity hits there. For fully-associative LRU this is
  exact (the classic Mattson result); set-associativity is absorbed
  into an effective-capacity factor.

The hierarchy is configured to match the model rack's CPU (§VI-B
"we configure the cache hierarchy to match the CPUs of our model HPC
rack"): Milan-like 32 KiB L1D, 512 KiB L2, 32 MiB L3 slice per core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Parameters
    ----------
    name:
        Level label ("L1", "L2", "LLC").
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Cache line size.
    associativity:
        Ways per set.
    hit_penalty_cycles:
        Extra cycles charged when an access must be serviced at this
        level (i.e. it missed all faster levels). L1 hits are hidden by
        the pipeline and charged 0 in the timing models.
    effective_capacity_factor:
        Fraction of nominal capacity that behaves fully-associatively
        under the stack-distance model (conflict misses shave a bit).
    """

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    hit_penalty_cycles: float = 0.0
    effective_capacity_factor: float = 0.95

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")
        if self.capacity_bytes % self.line_bytes:
            raise ValueError(f"{self.name}: capacity not a multiple of line")
        if self.associativity <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")
        if not 0 < self.effective_capacity_factor <= 1:
            raise ValueError(f"{self.name}: capacity factor in (0, 1]")

    @property
    def lines(self) -> int:
        """Total cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        """Number of sets."""
        return max(1, self.lines // self.associativity)

    @property
    def effective_lines(self) -> int:
        """Lines available under the stack-distance approximation."""
        return max(1, int(self.lines * self.effective_capacity_factor))


#: Milan-like per-core hierarchy used throughout the study.
MILAN_L1 = CacheConfig("L1", 32 * 1024, hit_penalty_cycles=0.0)
MILAN_L2 = CacheConfig("L2", 512 * 1024, hit_penalty_cycles=8.0)
MILAN_LLC = CacheConfig("LLC", 32 * 1024 * 1024, associativity=16,
                        hit_penalty_cycles=20.0)


@dataclass(frozen=True)
class CacheStats:
    """Per-level access outcome counts for one simulated trace."""

    instructions: int
    mem_accesses: int
    l1_hits: int
    l2_hits: int
    llc_hits: int
    dram_accesses: int

    def __post_init__(self) -> None:
        total = self.l1_hits + self.l2_hits + self.llc_hits + self.dram_accesses
        if total != self.mem_accesses:
            raise ValueError(
                f"outcome counts {total} != mem accesses {self.mem_accesses}")

    @property
    def llc_accesses(self) -> int:
        """Accesses reaching the LLC (missed L1 and L2)."""
        return self.llc_hits + self.dram_accesses

    @property
    def llc_miss_rate(self) -> float:
        """LLC misses / LLC accesses — the quantity Fig. 7 plots."""
        if self.llc_accesses == 0:
            return 0.0
        return self.dram_accesses / self.llc_accesses

    @property
    def dram_per_instruction(self) -> float:
        """DRAM (LLC-miss) accesses per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.dram_accesses / self.instructions

    @property
    def mem_ratio(self) -> float:
        """Memory accesses per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.mem_accesses / self.instructions


@dataclass
class CacheHierarchy:
    """A three-level hierarchy used by the fast simulator."""

    l1: CacheConfig = field(default_factory=lambda: MILAN_L1)
    l2: CacheConfig = field(default_factory=lambda: MILAN_L2)
    llc: CacheConfig = field(default_factory=lambda: MILAN_LLC)

    def __post_init__(self) -> None:
        if not (self.l1.lines < self.l2.lines < self.llc.lines):
            raise ValueError("hierarchy levels must strictly grow")

    def level_line_thresholds(self) -> tuple[int, int, int]:
        """Effective line capacities (L1, L2, LLC)."""
        return (self.l1.effective_lines, self.l2.effective_lines,
                self.llc.effective_lines)


def simulate_hierarchy(stack_distances: np.ndarray, instructions: int,
                       hierarchy: CacheHierarchy | None = None) -> CacheStats:
    """Classify every access by its LRU stack distance (vectorized).

    Parameters
    ----------
    stack_distances:
        Per-access LRU stack distance in *lines* (0 = re-reference of
        the most recent line). ``np.inf`` (or any huge value) denotes a
        cold/compulsory miss.
    instructions:
        Total instructions the trace represents (memory + non-memory).
    """
    hierarchy = hierarchy if hierarchy is not None else CacheHierarchy()
    sd = np.asarray(stack_distances)
    if sd.ndim != 1:
        raise ValueError("stack_distances must be 1-D")
    if instructions < sd.size:
        raise ValueError("instructions cannot be fewer than memory accesses")
    c1, c2, c3 = hierarchy.level_line_thresholds()
    in_l1 = sd < c1
    in_l2 = sd < c2
    in_llc = sd < c3
    l1_hits = int(np.count_nonzero(in_l1))
    l2_hits = int(np.count_nonzero(in_l2 & ~in_l1))
    llc_hits = int(np.count_nonzero(in_llc & ~in_l2))
    dram = int(sd.size - l1_hits - l2_hits - llc_hits)
    return CacheStats(instructions=instructions, mem_accesses=int(sd.size),
                      l1_hits=l1_hits, l2_hits=l2_hits,
                      llc_hits=llc_hits, dram_accesses=dram)


class SetAssociativeCache:
    """Exact set-associative LRU cache over byte addresses.

    Pure-Python reference implementation used by tests to validate the
    fast stack-distance model and to study conflict behaviour on small
    traces. ``access`` returns True on hit and updates LRU state.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Each set is an ordered list of tags, most recent last.
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    def access(self, address: int) -> bool:
        """Access one byte address; returns hit/miss and updates state."""
        if address < 0:
            raise ValueError("address must be non-negative")
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)  # evict LRU
        self.misses += 1
        return False

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Clear all state and counters."""
        self._sets = [[] for _ in range(self.config.sets)]
        self.hits = 0
        self.misses = 0


class ExactHierarchy:
    """Three exact LRU caches with inclusive lookup ordering.

    Used for validation: feeds each address to L1, then L2 on L1 miss,
    then LLC on L2 miss, and counts where each access was serviced.
    """

    def __init__(self, l1: CacheConfig | None = None,
                 l2: CacheConfig | None = None,
                 llc: CacheConfig | None = None) -> None:
        self.l1 = SetAssociativeCache(l1 if l1 is not None else MILAN_L1)
        self.l2 = SetAssociativeCache(l2 if l2 is not None else MILAN_L2)
        self.llc = SetAssociativeCache(llc if llc is not None else MILAN_LLC)
        self.serviced = {"L1": 0, "L2": 0, "LLC": 0, "DRAM": 0}

    def access(self, address: int) -> str:
        """Access an address; returns the servicing level's name."""
        if self.l1.access(address):
            self.serviced["L1"] += 1
            return "L1"
        if self.l2.access(address):
            self.serviced["L2"] += 1
            return "L2"
        if self.llc.access(address):
            self.serviced["LLC"] += 1
            return "LLC"
        self.serviced["DRAM"] += 1
        return "DRAM"

    def stats(self, instructions: int) -> CacheStats:
        """Convert counters to :class:`CacheStats`."""
        total = sum(self.serviced.values())
        return CacheStats(instructions=instructions, mem_accesses=total,
                          l1_hits=self.serviced["L1"],
                          l2_hits=self.serviced["L2"],
                          llc_hits=self.serviced["LLC"],
                          dram_accesses=self.serviced["DRAM"])
