"""Main-memory latency model.

Separates the *base* LLC-to-DRAM service latency from the
*disaggregation adder* the study sweeps (25/30/35 ns photonic,
85 ns electronic). The base latency is the loaded LLC-miss-to-data
latency observed by the core beyond the LLC lookup itself; it is
calibrated so that a +35 ns adder inflates LLC miss cycles by the
50-150% the paper reports (see EXPERIMENTS.md, calibration notes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import ns_to_cycles


@dataclass(frozen=True)
class MemoryModel:
    """DRAM service latency as seen past the LLC.

    Parameters
    ----------
    base_latency_ns:
        Loaded LLC-miss-to-DRAM-data latency in the non-disaggregated
        baseline (beyond the LLC hit penalty).
    extra_latency_ns:
        Disaggregation adder between LLC and main memory — the paper's
        knob (0 for the baseline, 35 for the photonic rack, 85 for the
        electronic comparator).
    clock_ghz:
        Core clock used to convert to cycles.
    """

    base_latency_ns: float = 25.0
    extra_latency_ns: float = 0.0
    clock_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.base_latency_ns < 0 or self.extra_latency_ns < 0:
            raise ValueError("latencies must be >= 0")
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")

    @property
    def total_latency_ns(self) -> float:
        """Base plus adder."""
        return self.base_latency_ns + self.extra_latency_ns

    @property
    def total_latency_cycles(self) -> float:
        """Total DRAM service latency in core cycles."""
        return ns_to_cycles(self.total_latency_ns, self.clock_ghz)

    @property
    def extra_latency_cycles(self) -> float:
        """The adder alone, in cycles."""
        return ns_to_cycles(self.extra_latency_ns, self.clock_ghz)

    def with_extra(self, extra_latency_ns: float) -> "MemoryModel":
        """Copy with a different disaggregation adder."""
        return MemoryModel(base_latency_ns=self.base_latency_ns,
                           extra_latency_ns=extra_latency_ns,
                           clock_ghz=self.clock_ghz)

    def miss_cycle_inflation(self, llc_penalty_cycles: float = 20.0) -> float:
        """Fractional growth of total LLC-miss cycles from the adder.

        The paper observes LLC miss cycles growing 50-150% under the
        35 ns adder; this helper exposes the model's value for the
        calibration tests.
        """
        base = llc_penalty_cycles + ns_to_cycles(self.base_latency_ns,
                                                 self.clock_ghz)
        return self.extra_latency_cycles / base
