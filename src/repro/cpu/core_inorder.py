"""In-order pipelined core timing model (§VI-B).

In-order cores expose memory latency directly: the pipeline hides L1
hit latency but stalls for the full service time of every miss. The
paper uses them precisely because they "provide clear insight into the
impact of memory latency".

Cycle accounting per simulated window::

    cycles = instructions * cpi_base
           + l2_serviced * l2_penalty
           + llc_serviced * llc_penalty
           + dram_serviced * (llc_penalty + dram_latency_cycles)

where per-level penalties come from the cache configuration and the
DRAM latency from :class:`~repro.cpu.memory.MemoryModel` (including
any disaggregation adder). DRAM accesses traverse the LLC on their way
out, hence the ``llc_penalty`` term on the miss path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.caches import CacheHierarchy, CacheStats
from repro.cpu.memory import MemoryModel


@dataclass(frozen=True)
class CoreResult:
    """Cycle breakdown for one simulated window."""

    cycles: float
    compute_cycles: float
    l2_stall_cycles: float
    llc_stall_cycles: float
    dram_stall_cycles: float

    @property
    def memory_stall_fraction(self) -> float:
        """Fraction of cycles stalled beyond L1."""
        stalls = (self.l2_stall_cycles + self.llc_stall_cycles
                  + self.dram_stall_cycles)
        return stalls / self.cycles if self.cycles else 0.0

    @property
    def llc_miss_cycles(self) -> float:
        """Cycles attributable to LLC misses (the 50-150% metric)."""
        return self.dram_stall_cycles


@dataclass(frozen=True)
class InOrderCore:
    """Single in-order pipelined core.

    Parameters
    ----------
    cpi_base:
        Cycles per instruction with a perfect memory system (captures
        issue width and non-memory execution).
    hierarchy:
        Cache configuration providing per-level penalties.
    """

    cpi_base: float = 1.0
    hierarchy: CacheHierarchy = field(default_factory=CacheHierarchy)

    def __post_init__(self) -> None:
        if self.cpi_base <= 0:
            raise ValueError("cpi_base must be positive")

    def execute(self, stats: CacheStats, memory: MemoryModel) -> CoreResult:
        """Timing for one trace window under a memory model."""
        compute = stats.instructions * self.cpi_base
        l2_stall = stats.l2_hits * self.hierarchy.l2.hit_penalty_cycles
        llc_stall = stats.llc_hits * self.hierarchy.llc.hit_penalty_cycles
        dram_stall = stats.dram_accesses * (
            self.hierarchy.llc.hit_penalty_cycles
            + memory.total_latency_cycles)
        return CoreResult(
            cycles=compute + l2_stall + llc_stall + dram_stall,
            compute_cycles=compute,
            l2_stall_cycles=l2_stall,
            llc_stall_cycles=llc_stall,
            dram_stall_cycles=dram_stall)

    def slowdown(self, stats: CacheStats, baseline: MemoryModel,
                 extra_latency_ns: float) -> float:
        """Relative execution-time increase from a disaggregation adder."""
        base = self.execute(stats, baseline).cycles
        disagg = self.execute(stats,
                              baseline.with_extra(extra_latency_ns)).cycles
        return disagg / base - 1.0
