"""Out-of-order core timing model (§VI-B).

OOO cores hide part of the memory latency with the reorder-buffer
window and overlap concurrent misses through memory-level parallelism
(MLP). The interval-style accounting is::

    cycles = instructions * cpi_exec
           + l2_serviced * l2_penalty * partial_exposure
           + llc_serviced * llc_penalty * partial_exposure
           + dram_serviced * max(0, miss_latency - hide_cycles) / mlp

``cpi_exec`` captures issue width *and* dependence-chain limits — a
pointer-chasing benchmark keeps a large ``cpi_exec`` and a small
``mlp``, which is why such codes (e.g. Rodinia NW) slow down *less*
relatively on OOO than in-order, while bandwidth-friendly streaming
codes (Parsec large) show *larger* relative OOO slowdowns: their
baselines are fast, but every extra nanosecond of miss latency is
divided only by their modest MLP. Both behaviours match Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.caches import CacheHierarchy, CacheStats
from repro.cpu.core_inorder import CoreResult
from repro.cpu.memory import MemoryModel


@dataclass(frozen=True)
class OutOfOrderCore:
    """Single out-of-order core.

    Parameters
    ----------
    cpi_exec:
        Cycles per instruction with a perfect memory system; includes
        dependence-chain serialization (benchmark-dependent).
    mlp:
        Effective memory-level parallelism across outstanding LLC
        misses (>= 1; benchmark-dependent).
    hide_cycles:
        Miss latency the ROB window absorbs before stalling.
    partial_exposure:
        Fraction of L2/LLC hit penalties that remain exposed (most is
        hidden by the window).
    hierarchy:
        Cache configuration providing per-level penalties.
    """

    cpi_exec: float = 0.45
    mlp: float = 2.0
    hide_cycles: float = 24.0
    partial_exposure: float = 0.35
    hierarchy: CacheHierarchy = field(default_factory=CacheHierarchy)

    def __post_init__(self) -> None:
        if self.cpi_exec <= 0:
            raise ValueError("cpi_exec must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        if self.hide_cycles < 0:
            raise ValueError("hide_cycles must be >= 0")
        if not 0 <= self.partial_exposure <= 1:
            raise ValueError("partial_exposure must be in [0, 1]")

    def execute(self, stats: CacheStats, memory: MemoryModel) -> CoreResult:
        """Timing for one trace window under a memory model."""
        compute = stats.instructions * self.cpi_exec
        l2_stall = (stats.l2_hits * self.hierarchy.l2.hit_penalty_cycles
                    * self.partial_exposure)
        llc_stall = (stats.llc_hits * self.hierarchy.llc.hit_penalty_cycles
                     * self.partial_exposure)
        miss_latency = (self.hierarchy.llc.hit_penalty_cycles
                        + memory.total_latency_cycles)
        exposed = max(0.0, miss_latency - self.hide_cycles) / self.mlp
        dram_stall = stats.dram_accesses * exposed
        return CoreResult(
            cycles=compute + l2_stall + llc_stall + dram_stall,
            compute_cycles=compute,
            l2_stall_cycles=l2_stall,
            llc_stall_cycles=llc_stall,
            dram_stall_cycles=dram_stall)

    def slowdown(self, stats: CacheStats, baseline: MemoryModel,
                 extra_latency_ns: float) -> float:
        """Relative execution-time increase from a disaggregation adder."""
        base = self.execute(stats, baseline).cycles
        disagg = self.execute(stats,
                              baseline.with_extra(extra_latency_ns)).cycles
        return disagg / base - 1.0
