"""DRAM channel model: banks, row buffers, and load-dependent latency.

Grounds the calibration choice documented in EXPERIMENTS.md: the
25 ns *loaded* LLC-to-data service latency used by
:class:`~repro.cpu.memory.MemoryModel` is not the unloaded ~90 ns DDR4
response figure of §III-A but the effective per-miss latency once
row-buffer hits and bank-level parallelism are accounted for — and it
*grows* under load, which is how the paper can observe LLC-miss-cycle
inflation of up to 150% (= a base even below 25 ns for some codes).

The model is an M/D/c-flavored approximation: ``banks`` servers, each
request costing the row-hit or row-miss service time, with a queueing
term from utilization.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMChannel:
    """One DDR channel with banked parallelism.

    Parameters
    ----------
    banks:
        Banks the channel interleaves across (16 for DDR4).
    row_hit_ns / row_miss_ns:
        Device service times: CAS-only vs precharge+activate+CAS.
        Defaults approximate DDR4-3200 (tCL ~13.75 ns; tRP+tRCD+tCL
        ~41 ns).
    row_hit_rate:
        Fraction of accesses hitting an open row.
    peak_gbyte_s:
        Channel bandwidth (25.6 for DDR4-3200).
    controller_ns:
        Fixed controller/PHY traversal both ways.
    """

    banks: int = 16
    row_hit_ns: float = 13.75
    row_miss_ns: float = 41.25
    row_hit_rate: float = 0.6
    peak_gbyte_s: float = 25.6
    controller_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ValueError("banks must be positive")
        if self.row_hit_ns <= 0 or self.row_miss_ns <= self.row_hit_ns:
            raise ValueError("need 0 < row_hit_ns < row_miss_ns")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")
        if self.peak_gbyte_s <= 0:
            raise ValueError("peak bandwidth must be positive")
        if self.controller_ns < 0:
            raise ValueError("controller latency must be >= 0")

    @property
    def mean_service_ns(self) -> float:
        """Device service time averaged over row-buffer outcomes."""
        return (self.row_hit_rate * self.row_hit_ns
                + (1.0 - self.row_hit_rate) * self.row_miss_ns)

    def utilization(self, demand_gbyte_s: float) -> float:
        """Channel utilization for an offered bandwidth."""
        if demand_gbyte_s < 0:
            raise ValueError("demand must be >= 0")
        return min(demand_gbyte_s / self.peak_gbyte_s, 0.999)

    def queueing_ns(self, demand_gbyte_s: float) -> float:
        """Mean queueing delay under load.

        M/D/c-style approximation: W_q ~ service * rho^(sqrt(2(c+1)))
        / (c * (1 - rho)) with c banks — exact shape is unimportant,
        the monotone blow-up near saturation is.
        """
        rho = self.utilization(demand_gbyte_s)
        if rho <= 0.0:
            return 0.0
        c = self.banks
        exponent = (2.0 * (c + 1)) ** 0.5
        return (self.mean_service_ns * rho ** exponent
                / (c * (1.0 - rho)))

    def loaded_latency_ns(self, demand_gbyte_s: float = 0.0) -> float:
        """End-to-end per-request latency at a given offered load."""
        return (self.controller_ns + self.mean_service_ns
                + self.queueing_ns(demand_gbyte_s))

    def effective_miss_latency_ns(self, demand_gbyte_s: float = 0.0,
                                  blp: float = 4.0) -> float:
        """Per-miss latency a core *observes* with bank-level parallelism.

        Overlapped misses amortize the device time across ``blp``
        concurrently serviced banks; the controller traversal and
        queueing remain serial per request. This is the quantity the
        simple :class:`~repro.cpu.memory.MemoryModel` collapses to a
        constant (25 ns default).
        """
        if blp < 1.0:
            raise ValueError("blp must be >= 1")
        return (self.controller_ns
                + self.mean_service_ns / blp
                + self.queueing_ns(demand_gbyte_s))


def calibration_consistency(channel: DRAMChannel | None = None,
                            demand_gbyte_s: float = 5.0,
                            blp: float = 4.0) -> dict:
    """Show that the 25 ns MemoryModel default falls out of the DRAM
    model at production-like loads (EXPERIMENTS.md calibration note)."""
    channel = channel if channel is not None else DRAMChannel()
    effective = channel.effective_miss_latency_ns(demand_gbyte_s, blp)
    return {
        "mean_device_service_ns": channel.mean_service_ns,
        "queueing_ns": channel.queueing_ns(demand_gbyte_s),
        "effective_miss_latency_ns": effective,
        "memory_model_default_ns": 25.0,
        "within_band": 15.0 <= effective <= 35.0,
    }
