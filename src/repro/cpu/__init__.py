"""CPU performance substrate (gem5 substitute).

Trace-driven cache-hierarchy plus core timing models used for the
paper's §VI-B latency study. A benchmark is characterized by a
:class:`~repro.cpu.trace.TraceSpec`; the generator synthesizes a
memory-reference stream with the benchmark's locality profile, the
cache hierarchy turns it into per-level hit/miss counts, and the
in-order / out-of-order timing models turn those into cycles with and
without the disaggregation latency adder.

Two cache simulators are provided: an exact set-associative LRU
simulator (:class:`~repro.cpu.caches.SetAssociativeCache`) used for
validation on small traces, and a fast vectorized stack-distance model
(:func:`~repro.cpu.caches.simulate_hierarchy`) used by the studies.
"""

from repro.cpu.caches import (
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    SetAssociativeCache,
    simulate_hierarchy,
)
from repro.cpu.trace import TraceSpec, SyntheticTrace, generate_trace
from repro.cpu.memory import MemoryModel
from repro.cpu.dram import DRAMChannel, calibration_consistency
from repro.cpu.core_inorder import InOrderCore
from repro.cpu.core_ooo import OutOfOrderCore
from repro.cpu.simulator import CPUSimulator, SlowdownResult

__all__ = [
    "CacheConfig", "CacheHierarchy", "CacheStats", "SetAssociativeCache",
    "simulate_hierarchy",
    "TraceSpec", "SyntheticTrace", "generate_trace",
    "MemoryModel", "DRAMChannel", "calibration_consistency",
    "InOrderCore", "OutOfOrderCore",
    "CPUSimulator", "SlowdownResult",
]
