"""Synthetic memory-trace generation.

A benchmark's locality is described by a :class:`TraceSpec` whose four
*reuse pools* correspond to the hierarchy levels: a fraction of
accesses re-reference data resident within L1-sized, L2-sized,
LLC-sized, or beyond-LLC footprints. The generator draws each access's
LRU stack distance from the pool mixture — uniform within the pool's
line range — producing a stream whose per-level hit rates match the
benchmark's characterization *in expectation* while remaining a real
per-access stochastic trace (seeded, reproducible, with sampling
noise like any measured run).

This is the calibration interface between published benchmark
characteristics (PARSEC/NAS/Rodinia cache behaviour) and the cache
simulator — see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.caches import CacheHierarchy


@dataclass(frozen=True)
class TraceSpec:
    """Locality characterization of one benchmark run.

    Parameters
    ----------
    name:
        Benchmark identifier ("parsec.streamcluster.large").
    instructions:
        Instructions the synthesized window represents.
    mem_ratio:
        Memory accesses per instruction (loads + stores), in (0, 1].
    l1_fraction, l2_fraction, llc_fraction:
        Fractions of memory accesses whose reuse distance lands within
        the L1 / L2 / LLC effective capacity. The remainder
        (``dram_fraction``) misses the LLC.
    """

    name: str
    instructions: int
    mem_ratio: float
    l1_fraction: float
    l2_fraction: float
    llc_fraction: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError(f"{self.name}: instructions must be positive")
        if not 0 < self.mem_ratio <= 1:
            raise ValueError(f"{self.name}: mem_ratio must be in (0, 1]")
        for label, frac in (("l1", self.l1_fraction),
                            ("l2", self.l2_fraction),
                            ("llc", self.llc_fraction)):
            if frac < 0:
                raise ValueError(f"{self.name}: {label}_fraction negative")
        if self.l1_fraction + self.l2_fraction + self.llc_fraction > 1 + 1e-12:
            raise ValueError(f"{self.name}: hit fractions exceed 1")

    @property
    def dram_fraction(self) -> float:
        """Fraction of memory accesses that miss the LLC."""
        return max(0.0, 1.0 - self.l1_fraction - self.l2_fraction
                   - self.llc_fraction)

    @property
    def mem_accesses(self) -> int:
        """Memory accesses in the synthesized window."""
        return max(1, int(round(self.instructions * self.mem_ratio)))

    @property
    def expected_llc_miss_rate(self) -> float:
        """Expected misses / LLC accesses (the Fig. 7 x-axis)."""
        reaching = self.llc_fraction + self.dram_fraction
        if reaching <= 0:
            return 0.0
        return self.dram_fraction / reaching


@dataclass(frozen=True)
class SyntheticTrace:
    """A generated trace: per-access stack distances plus metadata."""

    spec: TraceSpec
    stack_distances: np.ndarray

    @property
    def mem_accesses(self) -> int:
        """Length of the access stream."""
        return int(self.stack_distances.size)


def generate_trace(spec: TraceSpec,
                   hierarchy: CacheHierarchy | None = None,
                   seed: int | None = None) -> SyntheticTrace:
    """Synthesize the access stream for a :class:`TraceSpec`.

    Each access picks a reuse pool by the spec's fractions and draws a
    stack distance uniformly within that pool's line range:

    * L1 pool: ``[0, c1)``
    * L2 pool: ``[c1, c2)``
    * LLC pool: ``[c2, c3)``
    * DRAM pool: ``[c3, 4*c3)`` — beyond-LLC reuse plus cold misses.

    where ``c1 < c2 < c3`` are the hierarchy's effective line
    capacities, so the cache simulator recovers the spec's hit
    fractions up to sampling noise.
    """
    hierarchy = hierarchy if hierarchy is not None else CacheHierarchy()
    c1, c2, c3 = hierarchy.level_line_thresholds()
    n = spec.mem_accesses
    rng = np.random.default_rng(seed if seed is not None
                                else _stable_seed(spec.name))
    probs = np.array([spec.l1_fraction, spec.l2_fraction,
                      spec.llc_fraction, spec.dram_fraction])
    probs = probs / probs.sum()
    pool = rng.choice(4, size=n, p=probs)
    u = rng.random(n)
    lows = np.array([0, c1, c2, c3], dtype=float)
    highs = np.array([c1, c2, c3, 4 * c3], dtype=float)
    sd = lows[pool] + u * (highs[pool] - lows[pool])
    return SyntheticTrace(spec=spec, stack_distances=sd)


def _stable_seed(name: str) -> int:
    """Deterministic seed from a benchmark name (stable across runs)."""
    h = 2166136261
    for ch in name.encode():
        h = (h ^ ch) * 16777619 % (1 << 32)
    return h
