"""CPU simulation facade: trace -> caches -> core timing -> slowdown.

Ties the substrate together the way the paper's gem5 flow does:
generate (synthesize) the benchmark's memory trace, run it through the
cache hierarchy, and time it on an in-order and an out-of-order core
with and without the disaggregation latency adder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.caches import CacheHierarchy, CacheStats, simulate_hierarchy
from repro.cpu.core_inorder import InOrderCore
from repro.cpu.core_ooo import OutOfOrderCore
from repro.cpu.memory import MemoryModel
from repro.cpu.trace import TraceSpec, generate_trace


@dataclass(frozen=True)
class SlowdownResult:
    """Outcome of one benchmark x core-type x latency point."""

    name: str
    core: str                     # "inorder" | "ooo"
    extra_latency_ns: float
    slowdown: float               # relative execution-time increase
    llc_miss_rate: float          # misses / LLC accesses
    dram_per_instruction: float
    memory_stall_fraction: float  # of baseline cycles
    miss_cycle_inflation: float   # growth of LLC miss cycles

    @property
    def speedup_vs(self) -> float:
        """1 + slowdown (execution-time ratio vs. zero-adder baseline)."""
        return 1.0 + self.slowdown


@dataclass
class CPUSimulator:
    """Runs benchmarks through the full CPU substrate.

    Parameters
    ----------
    hierarchy:
        Cache configuration (defaults to the Milan-like hierarchy).
    memory:
        Baseline memory model (zero adder).
    """

    hierarchy: CacheHierarchy = field(default_factory=CacheHierarchy)
    memory: MemoryModel = field(default_factory=MemoryModel)

    def cache_stats(self, spec: TraceSpec, seed: int | None = None
                    ) -> CacheStats:
        """Synthesize the trace and classify it through the hierarchy."""
        trace = generate_trace(spec, hierarchy=self.hierarchy, seed=seed)
        return simulate_hierarchy(trace.stack_distances, spec.instructions,
                                  self.hierarchy)

    def run(self, spec: TraceSpec, core: InOrderCore | OutOfOrderCore,
            extra_latency_ns: float, core_label: str,
            stats: CacheStats | None = None) -> SlowdownResult:
        """One benchmark on one core with one latency adder."""
        if stats is None:
            stats = self.cache_stats(spec)
        baseline = self.memory
        base_result = core.execute(stats, baseline)
        disagg = core.execute(stats, baseline.with_extra(extra_latency_ns))
        base_miss = base_result.llc_miss_cycles
        inflation = ((disagg.llc_miss_cycles - base_miss) / base_miss
                     if base_miss > 0 else 0.0)
        return SlowdownResult(
            name=spec.name,
            core=core_label,
            extra_latency_ns=extra_latency_ns,
            slowdown=disagg.cycles / base_result.cycles - 1.0,
            llc_miss_rate=stats.llc_miss_rate,
            dram_per_instruction=stats.dram_per_instruction,
            memory_stall_fraction=base_result.memory_stall_fraction,
            miss_cycle_inflation=inflation)

    def run_inorder(self, spec: TraceSpec, extra_latency_ns: float,
                    cpi_base: float = 1.0,
                    stats: CacheStats | None = None) -> SlowdownResult:
        """Convenience wrapper for the in-order core."""
        core = InOrderCore(cpi_base=cpi_base, hierarchy=self.hierarchy)
        return self.run(spec, core, extra_latency_ns, "inorder", stats)

    def run_ooo(self, spec: TraceSpec, extra_latency_ns: float,
                cpi_exec: float = 0.45, mlp: float = 2.0,
                stats: CacheStats | None = None) -> SlowdownResult:
        """Convenience wrapper for the OOO core."""
        core = OutOfOrderCore(cpi_exec=cpi_exec, mlp=mlp,
                              hierarchy=self.hierarchy)
        return self.run(spec, core, extra_latency_ns, "ooo", stats)
