"""Machine-checkable ledger of the paper's quantitative claims.

Every headline number the paper states is registered here as a
:class:`Claim` with the paper's value, a tolerance policy, and a
callable that measures the same quantity from this library. Running
:func:`validate_all` regenerates the full paper-vs-measured table that
EXPERIMENTS.md summarizes — making the reproduction auditable in one
call (and in `python -m repro claims`).

Claims are grouped so expensive substrates (the CPU study) run once
and feed several claims.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np


@dataclass(frozen=True)
class Claim:
    """One quantitative claim from the paper.

    Parameters
    ----------
    claim_id:
        Stable identifier ("table3.total_mcms").
    section:
        Paper location.
    description:
        What the number means.
    paper_value:
        The value the paper states.
    tolerance:
        Acceptable |measured - paper| (absolute). ``None`` demands
        exact equality.
    relative:
        When true, tolerance is relative to the paper value.
    """

    claim_id: str
    section: str
    description: str
    paper_value: float
    tolerance: float | None = None
    relative: bool = False

    def check(self, measured: float) -> bool:
        """Is the measured value within tolerance?"""
        if self.tolerance is None:
            return measured == self.paper_value
        bound = self.tolerance
        if self.relative:
            bound = abs(self.paper_value) * self.tolerance
        return abs(measured - self.paper_value) <= bound


@dataclass(frozen=True)
class ClaimResult:
    """A claim together with its measured value."""

    claim: Claim
    measured: float

    @property
    def ok(self) -> bool:
        """Within tolerance?"""
        return self.claim.check(self.measured)

    def as_row(self) -> dict:
        """Row for report rendering."""
        return {
            "claim": self.claim.claim_id,
            "section": self.claim.section,
            "paper": self.claim.paper_value,
            "measured": self.measured,
            "ok": self.ok,
        }


def _structural_measurements() -> dict[str, float]:
    from repro.photonics.awgr import CascadedAWGR
    from repro.photonics.links import link_by_name
    from repro.rack.baseline import BaselineRack
    from repro.rack.design import plan_awgr_fabric, plan_wss_fabric
    from repro.rack.mcm import pack_rack, total_mcms

    packings = pack_rack()
    awgr_plan = plan_awgr_fabric()
    wss_plan = plan_wss_fabric()
    cascade = CascadedAWGR.paper_config()
    out = {
        "table3.total_mcms": float(total_mcms(packings)),
        "fig5.min_direct_wavelengths":
            float(awgr_plan.min_direct_wavelengths()),
        "fig5.direct_pair_gbps": awgr_plan.guaranteed_pair_gbps(),
        "fig5.wss_min_paths": float(wss_plan.min_direct_paths()),
        "awgr.built_ports": float(cascade.built_ports),
        "awgr.usable_ports": float(cascade.ports),
        "table1.teraphy_links": float(
            link_by_name("ayar-teraphy").links_for_escape(2.0)),
        "isoperf.baseline_modules": float(
            BaselineRack().total_modules()),
    }
    for chip_type, packing in packings.items():
        out[f"table3.{chip_type.value}_per_mcm"] = float(
            packing.chips_per_mcm)
    return out


def _performance_measurements() -> dict[str, float]:
    from repro.core.comparison import electronic_vs_photonic
    from repro.core.isoperf import iso_performance_comparison
    from repro.core.power import rack_power_overhead
    from repro.core.slowdown import (
        cpu_gpu_rodinia_comparison,
        run_cpu_study,
        run_gpu_study,
        suite_summary,
    )

    cpu = run_cpu_study(35.0)
    summaries = {(s.suite, s.input_size, s.core): s.mean_slowdown
                 for s in suite_summary(cpu)}
    nw = {r.core: r.slowdown for r in cpu
          if r.name == "rodinia.nw.default"}
    gpu = run_gpu_study(35.0)
    gpu_mean = float(np.mean([g.slowdown for g in gpu]))
    rodinia = cpu_gpu_rodinia_comparison(35.0)
    _, comp = electronic_vs_photonic()
    comp_by_core = {s.core: s.mean_speedup for s in comp}
    power = rack_power_overhead()
    iso = iso_performance_comparison()
    no_nas = [r for r in cpu if not r.name.startswith("nas")]

    return {
        "fig6.parsec_large_inorder": summaries[("parsec", "large",
                                                "inorder")],
        "fig6.parsec_large_ooo": summaries[("parsec", "large", "ooo")],
        "fig6.parsec_medium_inorder": summaries[("parsec", "medium",
                                                 "inorder")],
        "fig6.parsec_medium_ooo": summaries[("parsec", "medium", "ooo")],
        "fig6.rodinia_inorder": summaries[("rodinia", "default",
                                           "inorder")],
        "fig6.rodinia_ooo": summaries[("rodinia", "default", "ooo")],
        "fig6.nw_inorder": nw["inorder"],
        "fig6.nw_ooo": nw["ooo"],
        "fig6.overall_inorder_excl_nas": float(np.mean(
            [r.slowdown for r in no_nas if r.core == "inorder"])),
        "fig6.overall_ooo_excl_nas": float(np.mean(
            [r.slowdown for r in no_nas if r.core == "ooo"])),
        "fig9.gpu_mean": gpu_mean,
        "fig11.gpu_max": float(max(r.gpu for r in rodinia)),
        "fig12.inorder_mean_speedup": comp_by_core["inorder"],
        "fig12.ooo_mean_speedup": comp_by_core["ooo"],
        "fig12.gpu_mean_speedup": comp_by_core["gpu"],
        "power.photonic_kw": power.photonic_w / 1000.0,
        "power.overhead": power.overhead_fraction,
        "isoperf.module_reduction": iso.module_reduction,
        "isoperf.disagg_modules": iso.disaggregated_total,
    }


#: Structural claims (exact by construction).
STRUCTURAL_CLAIMS: tuple[Claim, ...] = (
    Claim("table3.total_mcms", "Table III", "total MCMs per rack", 350),
    Claim("table3.cpu_per_mcm", "Table III", "CPUs per MCM", 14),
    Claim("table3.gpu_per_mcm", "Table III", "GPUs per MCM", 3),
    Claim("table3.nic_per_mcm", "Table III", "NICs per MCM", 203),
    Claim("table3.hbm_per_mcm", "Table III", "HBM stacks per MCM", 4),
    Claim("table3.ddr4_per_mcm", "Table III", "DDR4 modules per MCM", 27),
    Claim("fig5.min_direct_wavelengths", "§V-B",
          "min direct wavelengths per MCM pair", 5),
    Claim("fig5.direct_pair_gbps", "§V-B",
          "guaranteed direct pair bandwidth (Gbps)", 125.0),
    Claim("fig5.wss_min_paths", "§V-B",
          "min direct WSS paths per pair", 3, tolerance=2.0),
    Claim("awgr.built_ports", "§III-D2", "cascaded AWGR built ports",
          396),
    Claim("awgr.usable_ports", "§III-D2", "cascaded AWGR usable ports",
          370),
    Claim("table1.teraphy_links", "Table I",
          "TeraPHY links for 2 TB/s", 21),
    Claim("isoperf.baseline_modules", "§VI-E",
          "baseline rack modules", 1920),
)

#: Performance claims (tolerance bands — calibrated substrates).
PERFORMANCE_CLAIMS: tuple[Claim, ...] = (
    Claim("fig6.parsec_large_inorder", "§VI-B1",
          "Parsec-large mean slowdown, in-order", 0.23, 0.04),
    Claim("fig6.parsec_large_ooo", "§VI-B1",
          "Parsec-large mean slowdown, OOO", 0.41, 0.06),
    Claim("fig6.parsec_medium_inorder", "§VI-B1",
          "Parsec-medium mean slowdown, in-order", 0.13, 0.03),
    Claim("fig6.parsec_medium_ooo", "§VI-B1",
          "Parsec-medium mean slowdown, OOO", 0.24, 0.05),
    Claim("fig6.rodinia_inorder", "§VI-B1",
          "Rodinia mean slowdown, in-order", 0.16, 0.04),
    Claim("fig6.rodinia_ooo", "§VI-B1",
          "Rodinia mean slowdown, OOO", 0.16, 0.04),
    Claim("fig6.nw_inorder", "§VI-B1", "NW slowdown, in-order",
          0.79, 0.06),
    Claim("fig6.nw_ooo", "§VI-B1", "NW slowdown, OOO", 0.55, 0.06),
    Claim("fig6.overall_inorder_excl_nas", "§VI-B1",
          "mean in-order slowdown (non-NAS)", 0.15, 0.05),
    Claim("fig6.overall_ooo_excl_nas", "§VI-B1",
          "mean OOO slowdown (non-NAS)", 0.22, 0.05),
    Claim("fig9.gpu_mean", "§VI-B3", "GPU mean slowdown @35 ns",
          0.0535, 0.02),
    Claim("fig11.gpu_max", "§VI-B4", "GPU max slowdown (Rodinia)",
          0.12, 0.03),
    Claim("fig12.inorder_mean_speedup", "§VI-D",
          "photonic speedup, in-order mean", 0.09, 0.05),
    Claim("fig12.ooo_mean_speedup", "§VI-D",
          "photonic speedup, OOO mean", 0.15, 0.06),
    Claim("fig12.gpu_mean_speedup", "§VI-D",
          "photonic speedup, GPU mean", 0.61, 0.18),
    Claim("power.photonic_kw", "§VI-C", "photonic rack power (kW)",
          11.0, 1.5),
    Claim("power.overhead", "§VI-C", "photonic power overhead",
          0.05, 0.015),
    Claim("isoperf.module_reduction", "§VI-E",
          "iso-performance module reduction", 0.44, 0.03),
    Claim("isoperf.disagg_modules", "§VI-E",
          "disaggregated rack modules", 1075.0, 30.0),
)

ALL_CLAIMS: tuple[Claim, ...] = STRUCTURAL_CLAIMS + PERFORMANCE_CLAIMS


def validate_structural() -> list[ClaimResult]:
    """Check every structural claim (fast)."""
    measured = _structural_measurements()
    return [ClaimResult(c, measured[c.claim_id])
            for c in STRUCTURAL_CLAIMS]


def validate_performance() -> list[ClaimResult]:
    """Check every performance claim (runs the full studies)."""
    measured = _performance_measurements()
    return [ClaimResult(c, measured[c.claim_id])
            for c in PERFORMANCE_CLAIMS]


def validate_all() -> list[ClaimResult]:
    """Check the entire ledger."""
    return validate_structural() + validate_performance()


def failed_claims(results: list[ClaimResult] | None = None
                  ) -> list[ClaimResult]:
    """Claims outside their tolerance (empty on a healthy build)."""
    results = results if results is not None else validate_all()
    return [r for r in results if not r.ok]

