"""Legacy setup shim: enables `pip install -e .` in offline environments
whose setuptools predates PEP 660 editable wheels (metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
